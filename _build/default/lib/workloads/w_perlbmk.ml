(* perlbmk stand-in: a register-based bytecode interpreter whose hot
   loop dispatches through a jump table — the classic megamorphic
   indirect jump that dominates interpreter profiles and that the
   paper's IBTC/sieve sweeps are most sensitive to.

   The bytecode is generated host-side (deterministically, from the size
   parameter), is straight-line except for a bounded forward skip, and
   ends with an END opcode that decrements an outer repetition counter.
   Thirty-two opcodes over four virtual registers held in $s2..$s5. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "perlbmk"
let description = "register VM interpreter, jump-table dispatch"

let n_ops = 32

(* host-side bytecode generator: word = opcode | (operand << 4) *)
let gen_bytecode ~len ~seed =
  let s = ref seed in
  let rand () =
    s := ((!s * 1103515245) + 12345) land 0xFFFF_FFFF;
    (!s lsr 16) land 0x7FFF
  in
  List.init len (fun i ->
      if i = len - 1 then n_ops - 1 (* END *)
      else
        (* never END early; never SKIP (11) right before END, which
           would jump past it into unmapped bytecode *)
        let op =
          if i = len - 2 then rand () mod 11
          else
            let op = rand () mod (n_ops - 1) in
            if op = 11 && rand () mod 2 = 0 then 12 else op
        in
        let operand = rand () land 0xFF in
        op lor (operand lsl 5))

let build ~size =
  let prog_len = 160 in
  let reps = max 4 (size / 24) in
  let b = B.create () in
  let code = B.dlabel ~name:"bytecode" b in
  List.iter (B.word b) (gen_bytecode ~len:prog_len ~seed:(size + 17));
  let handlers = List.init n_ops (fun i -> B.fresh_label ~name:(Printf.sprintf "op%d" i) b) in
  let jtab = Gen.table_of_labels b ~name:"jtab" handlers in

  let main = B.here ~name:"main" b in
  (* s0=bytecode base, s1=vpc (byte offset), s2..s5 = vm registers,
     s6=outer reps left, s7=jtab base; t7 = current operand *)
  Gen.fill_table b ~table:jtab handlers;
  B.la b Reg.s0 code;
  B.la b Reg.s7 jtab;
  B.li b Reg.s1 0;
  B.li b Reg.s2 1;
  B.li b Reg.s3 2;
  B.li b Reg.s4 3;
  B.li b Reg.s5 5;
  B.li b Reg.s6 reps;

  let loop = B.fresh_label ~name:"dispatch" b in
  let finish = B.fresh_label b in
  B.place b loop;
  B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.s1));
  B.emit b (Inst.Lw (Reg.t0, Reg.t0, 0));
  B.emit b (Inst.Andi (Reg.t1, Reg.t0, n_ops - 1));
  B.emit b (Inst.Srl (Reg.t7, Reg.t0, 5));
  B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
  B.emit b (Inst.Add (Reg.t1, Reg.s7, Reg.t1));
  B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
  B.emit b (Inst.Addi (Reg.s1, Reg.s1, 4));
  B.jr b Reg.t1;

  (* handlers: each ends by jumping back to the dispatch loop *)
  let h i body =
    B.place b (List.nth handlers i);
    body ();
    B.j b loop
  in
  h 0 (fun () -> B.emit b (Inst.Add (Reg.s2, Reg.s2, Reg.s3)));
  h 1 (fun () -> B.emit b (Inst.Sub (Reg.s3, Reg.s3, Reg.s4)));
  h 2 (fun () -> B.emit b (Inst.Xor (Reg.s4, Reg.s4, Reg.s5)));
  h 3 (fun () -> B.emit b (Inst.Add (Reg.s5, Reg.s5, Reg.t7)));
  h 4 (fun () -> B.emit b (Inst.Sll (Reg.s2, Reg.s2, 1)));
  h 5 (fun () -> B.emit b (Inst.Srl (Reg.s3, Reg.s3, 1)));
  h 6 (fun () ->
      B.emit b (Inst.Mul (Reg.s4, Reg.s4, Reg.s3));
      B.emit b (Inst.Addi (Reg.s4, Reg.s4, 1)));
  h 7 (fun () -> B.emit b (Inst.Or (Reg.s5, Reg.s5, Reg.s2)));
  h 8 (fun () -> B.mv b Reg.s2 Reg.t7);
  h 9 (fun () -> B.emit b (Inst.Add (Reg.s3, Reg.s2, Reg.s5)));
  h 10 (fun () ->
      (* conditional: if s2 odd then tweak s4 *)
      let even = B.fresh_label b in
      B.emit b (Inst.Andi (Reg.t2, Reg.s2, 1));
      B.beq b Reg.t2 Reg.zero even;
      B.emit b (Inst.Xor (Reg.s4, Reg.s4, Reg.t7));
      B.place b even);
  h 11 (fun () ->
      (* SKIP: advance vpc by one extra instruction *)
      B.emit b (Inst.Addi (Reg.s1, Reg.s1, 4)));
  h 12 (fun () -> B.emit b (Inst.Nor (Reg.s5, Reg.s5, Reg.s3)));
  h 13 (fun () ->
      B.emit b (Inst.Slt (Reg.t2, Reg.s3, Reg.s4));
      B.emit b (Inst.Add (Reg.s2, Reg.s2, Reg.t2)));
  h 14 (fun () -> B.emit b (Inst.Sub (Reg.s4, Reg.zero, Reg.s4)));
  (* ops 15..30: formulaic mixers over the VM registers *)
  for i = 15 to n_ops - 2 do
    let vr = [| Reg.s2; Reg.s3; Reg.s4; Reg.s5 |] in
    let a = vr.(i land 3) and b' = vr.((i lsr 2) land 3) in
    h i (fun () ->
        B.emit b (Inst.Xori (Reg.t2, a, (i * 41) land 0xFFFF));
        B.emit b (Inst.Add (a, Reg.t2, b'));
        if i land 1 = 0 then B.emit b (Inst.Srl (a, a, 1))
        else B.emit b (Inst.Sll (a, a, 1)))
  done;
  (* END: fold state, restart or finish *)
  B.place b (List.nth handlers (n_ops - 1));
  B.emit b (Inst.Xor (Reg.t2, Reg.s2, Reg.s3));
  B.emit b (Inst.Xor (Reg.t2, Reg.t2, Reg.s4));
  B.emit b (Inst.Xor (Reg.t2, Reg.t2, Reg.s5));
  Gen.checksum_reg b Reg.t2;
  B.emit b (Inst.Addi (Reg.s6, Reg.s6, -1));
  B.li b Reg.s1 0;
  B.bne b Reg.s6 Reg.zero loop;
  B.j b finish;

  B.place b finish;
  Gen.exit0 b;
  B.assemble b ~entry:main
