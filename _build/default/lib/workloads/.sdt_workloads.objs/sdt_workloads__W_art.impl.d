lib/workloads/w_art.ml: Gen Sdt_isa
