lib/workloads/w_vpr.ml: Gen Sdt_isa
