lib/workloads/synthetic.mli: Sdt_isa
