lib/workloads/w_vortex.mli: Sdt_isa
