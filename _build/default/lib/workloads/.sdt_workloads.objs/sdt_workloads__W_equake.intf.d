lib/workloads/w_equake.mli: Sdt_isa
