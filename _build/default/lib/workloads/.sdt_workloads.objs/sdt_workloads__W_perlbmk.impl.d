lib/workloads/w_perlbmk.ml: Array Gen List Printf Sdt_isa
