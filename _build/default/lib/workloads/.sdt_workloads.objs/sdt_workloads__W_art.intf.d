lib/workloads/w_art.mli: Sdt_isa
