lib/workloads/w_gcc.ml: Gen List Printf Sdt_isa
