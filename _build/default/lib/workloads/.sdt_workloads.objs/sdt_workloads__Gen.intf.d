lib/workloads/gen.mli: Sdt_isa
