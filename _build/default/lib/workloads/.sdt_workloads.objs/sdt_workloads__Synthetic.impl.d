lib/workloads/synthetic.ml: Gen List Printf Sdt_isa
