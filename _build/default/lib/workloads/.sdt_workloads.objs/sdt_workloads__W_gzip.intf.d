lib/workloads/w_gzip.mli: Sdt_isa
