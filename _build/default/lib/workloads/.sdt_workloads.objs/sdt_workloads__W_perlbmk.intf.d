lib/workloads/w_perlbmk.mli: Sdt_isa
