lib/workloads/gen.ml: List Sdt_isa
