lib/workloads/w_bzip2.mli: Sdt_isa
