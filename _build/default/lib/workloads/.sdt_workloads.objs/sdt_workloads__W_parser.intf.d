lib/workloads/w_parser.mli: Sdt_isa
