lib/workloads/w_bzip2.ml: Gen Sdt_isa
