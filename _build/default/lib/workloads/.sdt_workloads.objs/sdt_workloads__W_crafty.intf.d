lib/workloads/w_crafty.mli: Sdt_isa
