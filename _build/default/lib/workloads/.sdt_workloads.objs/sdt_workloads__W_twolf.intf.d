lib/workloads/w_twolf.mli: Sdt_isa
