lib/workloads/w_crafty.ml: Gen List Printf Sdt_isa
