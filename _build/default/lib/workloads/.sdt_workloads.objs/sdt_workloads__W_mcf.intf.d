lib/workloads/w_mcf.mli: Sdt_isa
