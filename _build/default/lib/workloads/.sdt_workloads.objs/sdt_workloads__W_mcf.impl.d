lib/workloads/w_mcf.ml: Gen Sdt_isa
