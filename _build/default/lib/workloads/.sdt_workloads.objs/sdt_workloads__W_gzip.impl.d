lib/workloads/w_gzip.ml: Gen Sdt_isa
