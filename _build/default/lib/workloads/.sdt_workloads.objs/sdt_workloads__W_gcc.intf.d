lib/workloads/w_gcc.mli: Sdt_isa
