lib/workloads/w_vpr.mli: Sdt_isa
