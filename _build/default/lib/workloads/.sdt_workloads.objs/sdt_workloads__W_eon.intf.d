lib/workloads/w_eon.mli: Sdt_isa
