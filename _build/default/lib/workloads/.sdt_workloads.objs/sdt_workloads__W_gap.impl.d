lib/workloads/w_gap.ml: Gen List Printf Sdt_isa
