lib/workloads/w_vortex.ml: Gen List Printf Sdt_isa
