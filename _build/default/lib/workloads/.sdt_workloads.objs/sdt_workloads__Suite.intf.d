lib/workloads/suite.mli: Sdt_isa
