lib/workloads/suite.ml: List Sdt_isa W_art W_bzip2 W_crafty W_eon W_equake W_gap W_gcc W_gzip W_mcf W_parser W_perlbmk W_twolf W_vortex W_vpr
