lib/workloads/w_parser.ml: Gen Sdt_isa
