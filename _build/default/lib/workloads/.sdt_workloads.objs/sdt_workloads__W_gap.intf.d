lib/workloads/w_gap.mli: Sdt_isa
