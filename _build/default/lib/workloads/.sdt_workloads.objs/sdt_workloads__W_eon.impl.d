lib/workloads/w_eon.ml: Gen List Printf Sdt_isa
