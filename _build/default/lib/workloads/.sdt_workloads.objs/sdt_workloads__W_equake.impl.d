lib/workloads/w_equake.ml: Gen Sdt_isa
