lib/workloads/w_twolf.ml: Gen List Printf Sdt_isa
