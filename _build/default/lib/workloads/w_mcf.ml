(* mcf stand-in: network-simplex-flavoured pointer chasing over a
   randomly linked node array. Memory-bound, branchy, and almost free of
   indirect branches — the benchmark the paper shows barely suffers
   under any IB mechanism. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "mcf"
let description = "pointer chasing over a linked node graph"

(* node: [next_offset, cost, potential, flow] = 16 bytes *)
let build ~size =
  let nodes = 1024 in
  let steps = max 256 (size * 4) in
  let b = B.create () in
  let arr = B.dlabel ~name:"nodes" b in
  B.space b (16 * nodes);
  B.align b 4;

  let main = B.here ~name:"main" b in
  (* s0=node base, s1=#nodes mask source, s2=seed, s3=acc, s4=cur addr *)
  B.la b Reg.s0 arr;
  B.li b Reg.s2 (7 + size);
  B.li b Reg.s3 0;

  (* init: next = 16 * (lcg mod nodes); cost = lcg & 0xFF *)
  B.li b Reg.t5 0;
  B.li b Reg.t6 nodes;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, nodes - 1));
      B.emit b (Inst.Sll (Reg.t1, Reg.t1, 4));
      B.emit b (Inst.Sll (Reg.t2, Reg.t5, 4));
      B.emit b (Inst.Add (Reg.t2, Reg.t2, Reg.s0));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0));
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t3;
      B.emit b (Inst.Andi (Reg.t3, Reg.t3, 0xFF));
      B.emit b (Inst.Sw (Reg.t3, Reg.t2, 4));
      B.emit b (Inst.Sw (Reg.zero, Reg.t2, 8));
      B.emit b (Inst.Sw (Reg.zero, Reg.t2, 12)));

  (* chase: potential updates along the next chain; every 256th step a
     helper call rebalances, so the benchmark has the trickle of
     returns real mcf shows (~0.5 per 1000 instructions) *)
  let relax = B.fresh_label ~name:"relax" b in
  let over = B.fresh_label b in
  B.j b over;
  B.place b relax;
  B.emit b (Inst.Lw (Reg.t0, Reg.s4, 8));
  B.emit b (Inst.Sra (Reg.t0, Reg.t0, 1));
  B.emit b (Inst.Sw (Reg.t0, Reg.s4, 8));
  B.ret b;
  B.place b over;
  B.mv b Reg.s4 Reg.s0;
  B.li b Reg.t5 0;
  B.li b Reg.t6 steps;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      let no_call = B.fresh_label b in
      B.emit b (Inst.Andi (Reg.t0, Reg.t5, 255));
      B.bne b Reg.t0 Reg.zero no_call;
      B.jal b relax;
      B.place b no_call;
      B.emit b (Inst.Lw (Reg.t0, Reg.s4, 4));  (* cost *)
      B.emit b (Inst.Lw (Reg.t1, Reg.s4, 8));  (* potential *)
      B.emit b (Inst.Sra (Reg.t2, Reg.t1, 3));
      B.emit b (Inst.Sub (Reg.t2, Reg.t0, Reg.t2));
      B.emit b (Inst.Add (Reg.t1, Reg.t1, Reg.t2));
      (* clamp: if potential > 4095 then halve and bump flow *)
      let no_clamp = B.fresh_label b in
      B.emit b (Inst.Slti (Reg.t3, Reg.t1, 4096));
      B.bne b Reg.t3 Reg.zero no_clamp;
      B.emit b (Inst.Sra (Reg.t1, Reg.t1, 1));
      B.emit b (Inst.Lw (Reg.t4, Reg.s4, 12));
      B.emit b (Inst.Addi (Reg.t4, Reg.t4, 1));
      B.emit b (Inst.Sw (Reg.t4, Reg.s4, 12));
      B.place b no_clamp;
      B.emit b (Inst.Sw (Reg.t1, Reg.s4, 8));
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t1));
      (* follow next *)
      B.emit b (Inst.Lw (Reg.t0, Reg.s4, 0));
      B.emit b (Inst.Add (Reg.s4, Reg.s0, Reg.t0)));

  Gen.checksum_reg b Reg.s3;
  (* fold in total flow of node 0 *)
  B.emit b (Inst.Lw (Reg.t0, Reg.s0, 12));
  Gen.checksum_reg b Reg.t0;
  Gen.exit0 b;
  B.assemble b ~entry:main
