(* art stand-in (SPEC CFP2000 179.art): neural-network image matching in
   fixed point. The hot code is multiply-accumulate sweeps over weight
   matrices with saturation tests — numeric loops with essentially no
   indirect branches, representing the FP half of SPEC that the paper
   shows is barely affected by any IB mechanism. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "art"
let description = "fixed-point neural-net matching (MAC sweeps)"

let neurons = 48  (* F1 layer width; weights are neurons x neurons *)

let build ~size =
  let epochs = max 2 (size / 15_000) in
  let b = B.create () in
  let weights = B.dlabel ~name:"weights" b in
  B.space b (4 * neurons * neurons);
  let activations = B.dlabel ~name:"acts" b in
  B.space b (4 * neurons);

  let main = B.here ~name:"main" b in
  (* s0=weights, s1=acts, s2=seed, s3=acc, s4=epoch, s5=epochs *)
  B.la b Reg.s0 weights;
  B.la b Reg.s1 activations;
  B.li b Reg.s2 (size + 83);
  B.li b Reg.s3 0;

  (* init weights (Q8.8 fixed point, small) and activations *)
  B.li b Reg.t5 0;
  B.li b Reg.t6 (neurons * neurons);
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, 0x1FF));
      B.emit b (Inst.Sll (Reg.t2, Reg.t5, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0)));
  B.li b Reg.t5 0;
  B.li b Reg.t6 neurons;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, 0xFF));
      B.emit b (Inst.Sll (Reg.t2, Reg.t5, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s1, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0)));

  (* epochs: acts <- saturate(W * acts >> 8), winner-take-all fold *)
  B.li b Reg.s4 0;
  B.li b Reg.s5 epochs;
  Gen.for_loop b ~counter:Reg.s4 ~bound:Reg.s5 (fun () ->
      B.li b Reg.s6 0;
      B.li b Reg.s7 neurons;
      Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s7 (fun () ->
          (* t7 = sum over j of W[i][j] * act[j] *)
          B.li b Reg.t7 0;
          B.li b Reg.t5 0;
          B.li b Reg.t6 neurons;
          Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
              B.li b Reg.t0 neurons;
              B.emit b (Inst.Mul (Reg.t0, Reg.s6, Reg.t0));
              B.emit b (Inst.Add (Reg.t0, Reg.t0, Reg.t5));
              B.emit b (Inst.Sll (Reg.t0, Reg.t0, 2));
              B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.t0));
              B.emit b (Inst.Lw (Reg.t0, Reg.t0, 0));
              B.emit b (Inst.Sll (Reg.t1, Reg.t5, 2));
              B.emit b (Inst.Add (Reg.t1, Reg.s1, Reg.t1));
              B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
              B.emit b (Inst.Mul (Reg.t0, Reg.t0, Reg.t1));
              B.emit b (Inst.Add (Reg.t7, Reg.t7, Reg.t0)));
          (* fixed-point rescale with saturation at 0xFFFF *)
          B.emit b (Inst.Srl (Reg.t7, Reg.t7, 8));
          let ok = B.fresh_label b in
          B.emit b (Inst.Srl (Reg.t0, Reg.t7, 16));
          B.beq b Reg.t0 Reg.zero ok;
          B.li b Reg.t7 0xFFFF;
          B.place b ok;
          (* write back, shifted down so the network stays bounded *)
          B.emit b (Inst.Srl (Reg.t0, Reg.t7, 8));
          B.emit b (Inst.Sll (Reg.t1, Reg.s6, 2));
          B.emit b (Inst.Add (Reg.t1, Reg.s1, Reg.t1));
          B.emit b (Inst.Sw (Reg.t0, Reg.t1, 0));
          B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t7))));

  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;
  B.assemble b ~entry:main
