(* gcc stand-in: a token-processing loop dispatching over a 16-way jump
   table (the switch statements that dominate compiler front ends), with
   two token kinds recursing into an expression parser. High
   indirect-jump density with a wide target set, plus bursts of
   call/return from the recursion. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "gcc"
let description = "64-way switch token dispatch + recursive descent"

let n_tokens = 64

let build ~size =
  let tokens = max 32 (size / 8) in
  let b = B.create () in
  let handlers =
    List.init n_tokens (fun i -> B.fresh_label ~name:(Printf.sprintf "tok%d" i) b)
  in
  let jtab = Gen.table_of_labels b ~name:"jtab" handlers in

  let main = B.here ~name:"main" b in
  let parse_expr = B.fresh_label ~name:"parse_expr" b in
  let cont = B.fresh_label ~name:"cont" b in

  (* s0=token counter, s1=#tokens, s2=seed, s3=acc, s5=jtab *)
  Gen.fill_table b ~table:jtab handlers;
  B.la b Reg.s5 jtab;
  B.li b Reg.s0 0;
  B.li b Reg.s1 tokens;
  B.li b Reg.s2 (size + 1);
  B.li b Reg.s3 0;

  let loop = B.fresh_label ~name:"token_loop" b in
  let out = B.fresh_label b in
  B.place b loop;
  B.bge b Reg.s0 Reg.s1 out;
  Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
  B.emit b (Inst.Andi (Reg.t2, Reg.t1, n_tokens - 1));
  B.emit b (Inst.Sll (Reg.t2, Reg.t2, 2));
  B.emit b (Inst.Add (Reg.t2, Reg.s5, Reg.t2));
  B.emit b (Inst.Lw (Reg.t2, Reg.t2, 0));
  B.jr b Reg.t2;
  B.place b cont;
  B.emit b (Inst.Addi (Reg.s0, Reg.s0, 1));
  B.j b loop;
  B.place b out;
  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;

  (* token handlers; all rejoin at cont *)
  let h i body =
    B.place b (List.nth handlers i);
    body ();
    B.j b cont
  in
  for i = 0 to n_tokens - 1 do
    match i with
    | i when i mod 8 = 3 ->
        (* nested expression: recurse to depth (bits & 7) *)
        h i (fun () ->
            B.emit b (Inst.Srl (Reg.a0, Reg.t1, 4));
            B.emit b (Inst.Andi (Reg.a0, Reg.a0, 7));
            B.jal b parse_expr;
            B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0)))
    | i when i mod 16 = 11 ->
        h i (fun () ->
            (* a "declaration": hash the token payload *)
            B.emit b (Inst.Srl (Reg.t3, Reg.t1, 2));
            B.li b Reg.t4 2654435761;
            B.emit b (Inst.Mul (Reg.t3, Reg.t3, Reg.t4));
            B.emit b (Inst.Srl (Reg.t3, Reg.t3, 20));
            B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t3)))
    | _ ->
        h i (fun () ->
            B.emit b (Inst.Addi (Reg.t3, Reg.zero, (i * 13) + 1));
            B.emit b (Inst.Xor (Reg.s3, Reg.s3, Reg.t3));
            B.emit b (Inst.Sll (Reg.t3, Reg.s3, 1));
            B.emit b (Inst.Srl (Reg.t4, Reg.s3, 31));
            B.emit b (Inst.Or (Reg.s3, Reg.t3, Reg.t4)))
  done;

  (* v0 = parse_expr(a0): binary recursion over the depth, lots of
     returns in a burst *)
  B.place b parse_expr;
  let base = B.fresh_label b in
  B.emit b (Inst.Slti (Reg.t5, Reg.a0, 1));
  B.bne b Reg.t5 Reg.zero base;
  B.push b Reg.ra;
  B.push b Reg.a0;
  B.emit b (Inst.Addi (Reg.a0, Reg.a0, -1));
  B.jal b parse_expr;
  B.pop b Reg.a0;
  B.push b Reg.v0;
  B.emit b (Inst.Addi (Reg.a0, Reg.a0, -2));
  let skip_second = B.fresh_label b in
  let second_done = B.fresh_label b in
  B.blt b Reg.a0 Reg.zero skip_second;
  B.jal b parse_expr;
  B.j b second_done;
  B.place b skip_second;
  B.li b Reg.v0 1;
  B.place b second_done;
  B.pop b Reg.t6;
  B.emit b (Inst.Add (Reg.v0, Reg.v0, Reg.t6));
  B.pop b Reg.ra;
  B.ret b;
  B.place b base;
  B.li b Reg.v0 1;
  B.ret b;

  B.assemble b ~entry:main
