(* vpr stand-in: simulated-annealing placement. Each iteration picks two
   cells, calls a cost-delta function over their neighbourhoods, and
   swaps on improvement (or occasionally anyway, annealing-style).
   A call/return per iteration over a branchy, load-heavy core. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "vpr"
let description = "simulated-annealing placement with a cost call per move"

let cells = 1024  (* power of two *)

let build ~size =
  let moves = max 16 (size / 40) in
  let b = B.create () in
  let grid = B.dlabel ~name:"grid" b in
  B.space b (4 * cells);
  B.align b 4;

  let main = B.here ~name:"main" b in
  let cost_delta = B.fresh_label ~name:"cost_delta" b in
  let swap = B.fresh_label ~name:"swap" b in

  (* s0=grid, s1=moves, s2=seed, s3=acc, s6=i *)
  B.la b Reg.s0 grid;
  B.li b Reg.s1 moves;
  B.li b Reg.s2 (size + 59);
  B.li b Reg.s3 0;

  (* init grid *)
  B.li b Reg.s6 0;
  B.li b Reg.t6 cells;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Sll (Reg.t2, Reg.s6, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0)));

  (* annealing loop *)
  B.li b Reg.s6 0;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s1 (fun () ->
      (* pick two interior cells *)
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.a0;
      B.emit b (Inst.Andi (Reg.a0, Reg.a0, cells - 4));
      B.emit b (Inst.Addi (Reg.a0, Reg.a0, 1));
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.a1;
      B.emit b (Inst.Andi (Reg.a1, Reg.a1, cells - 4));
      B.emit b (Inst.Addi (Reg.a1, Reg.a1, 1));
      B.jal b cost_delta;
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0));
      (* accept if delta < 0, or anneal-accept when (seed>>16)&15 == 0 *)
      let accept = B.fresh_label b in
      let reject = B.fresh_label b in
      B.blt b Reg.v0 Reg.zero accept;
      B.emit b (Inst.Srl (Reg.t3, Reg.s2, 16));
      B.emit b (Inst.Andi (Reg.t3, Reg.t3, 15));
      B.bne b Reg.t3 Reg.zero reject;
      B.place b accept;
      B.jal b swap;
      B.place b reject);

  Gen.checksum_reg b Reg.s3;
  (* fold a few grid cells *)
  B.emit b (Inst.Lw (Reg.t0, Reg.s0, 4));
  Gen.checksum_reg b Reg.t0;
  B.emit b (Inst.Lw (Reg.t0, Reg.s0, 512));
  Gen.checksum_reg b Reg.t0;
  Gen.exit0 b;

  (* v0 = cost_delta(a0, a1): difference of neighbourhood tensions if
     the two cells were swapped; preserves a0/a1 *)
  B.place b cost_delta;
  let cell dst idx_reg off =
    B.emit b (Inst.Sll (Reg.t0, idx_reg, 2));
    B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.t0));
    B.emit b (Inst.Lw (dst, Reg.t0, off))
  in
  (* tension(i) = |v[i]-v[i-1]| + |v[i]-v[i+1]| approximated without
     abs: sum of xors *)
  cell Reg.t1 Reg.a0 0;
  cell Reg.t2 Reg.a0 (-4);
  cell Reg.t3 Reg.a0 4;
  B.emit b (Inst.Xor (Reg.t2, Reg.t1, Reg.t2));
  B.emit b (Inst.Xor (Reg.t3, Reg.t1, Reg.t3));
  B.emit b (Inst.Add (Reg.t4, Reg.t2, Reg.t3));  (* tension a *)
  cell Reg.t1 Reg.a1 0;
  cell Reg.t2 Reg.a1 (-4);
  cell Reg.t3 Reg.a1 4;
  B.emit b (Inst.Xor (Reg.t2, Reg.t1, Reg.t2));
  B.emit b (Inst.Xor (Reg.t3, Reg.t1, Reg.t3));
  B.emit b (Inst.Add (Reg.t5, Reg.t2, Reg.t3));  (* tension b *)
  B.emit b (Inst.Sub (Reg.v0, Reg.t4, Reg.t5));
  B.emit b (Inst.Sra (Reg.v0, Reg.v0, 4));
  B.ret b;

  (* swap(a0, a1): exchange the two cells *)
  B.place b swap;
  B.emit b (Inst.Sll (Reg.t0, Reg.a0, 2));
  B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.t0));
  B.emit b (Inst.Sll (Reg.t1, Reg.a1, 2));
  B.emit b (Inst.Add (Reg.t1, Reg.s0, Reg.t1));
  B.emit b (Inst.Lw (Reg.t2, Reg.t0, 0));
  B.emit b (Inst.Lw (Reg.t3, Reg.t1, 0));
  B.emit b (Inst.Sw (Reg.t3, Reg.t0, 0));
  B.emit b (Inst.Sw (Reg.t2, Reg.t1, 0));
  B.ret b;

  B.assemble b ~entry:main
