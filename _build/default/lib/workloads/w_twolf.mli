(** The twolf stand-in; see the implementation header for the workload's
    structure and its indirect-branch profile. *)

val name : string
val description : string

val build : size:int -> Sdt_isa.Program.t
(** Build the program at a given size (roughly proportional to dynamic
    instruction count); see {!Suite} for the calibrated sizes. *)
