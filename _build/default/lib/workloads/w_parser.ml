(* parser stand-in: dictionary hashing plus recursive descent.
   Chained hash-table inserts and lookups (pointer chasing) interleave
   with a recursive "sentence" parser — a return-dominated profile. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "parser"
let description = "hash-table dictionary + recursive descent parsing"

let buckets = 128
let max_entries = 4096

let build ~size =
  let words = max 32 (min max_entries (size / 16)) in
  let b = B.create () in
  let table = B.dlabel ~name:"buckets" b in
  B.space b (4 * buckets);
  (* entry pool: [key, next_addr] *)
  let pool = B.dlabel ~name:"pool" b in
  B.space b (8 * max_entries);
  B.align b 4;

  let main = B.here ~name:"main" b in
  let parse = B.fresh_label ~name:"parse" b in
  (* s0=table, s1=pool, s2=seed, s3=acc, s4=next free entry index,
     s5=#words *)
  B.la b Reg.s0 table;
  B.la b Reg.s1 pool;
  B.li b Reg.s2 (size + 31);
  B.li b Reg.s3 0;
  B.li b Reg.s4 0;
  B.li b Reg.s5 words;

  (* insert phase: key = lcg bits; bucket = key & 127; push-front *)
  B.li b Reg.s6 0;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s5 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t2, Reg.t1, buckets - 1));
      B.emit b (Inst.Sll (Reg.t2, Reg.t2, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t2));  (* bucket addr *)
      B.emit b (Inst.Lw (Reg.t3, Reg.t2, 0));        (* old head *)
      B.emit b (Inst.Sll (Reg.t4, Reg.s4, 3));
      B.emit b (Inst.Add (Reg.t4, Reg.s1, Reg.t4));  (* new entry addr *)
      B.emit b (Inst.Sw (Reg.t1, Reg.t4, 0));
      B.emit b (Inst.Sw (Reg.t3, Reg.t4, 4));
      B.emit b (Inst.Sw (Reg.t4, Reg.t2, 0));
      B.emit b (Inst.Addi (Reg.s4, Reg.s4, 1)));

  (* lookup + parse phase: probe 2x words keys, walk chains; every hit
     recurses into parse(key & 15) *)
  B.li b Reg.s6 0;
  B.emit b (Inst.Sll (Reg.s7, Reg.s5, 1));
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s7 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t2, Reg.t1, buckets - 1));
      B.emit b (Inst.Sll (Reg.t2, Reg.t2, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t2));
      B.emit b (Inst.Lw (Reg.t3, Reg.t2, 0));
      (* walk the chain looking for the key *)
      let walk = B.fresh_label b in
      let miss = B.fresh_label b in
      let hit = B.fresh_label b in
      let next = B.fresh_label b in
      B.place b walk;
      B.beq b Reg.t3 Reg.zero miss;
      B.emit b (Inst.Lw (Reg.t4, Reg.t3, 0));
      B.beq b Reg.t4 Reg.t1 hit;
      B.emit b (Inst.Lw (Reg.t3, Reg.t3, 4));
      B.j b walk;
      B.place b hit;
      B.emit b (Inst.Andi (Reg.a0, Reg.t1, 15));
      B.jal b parse;
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0));
      B.j b next;
      B.place b miss;
      B.emit b (Inst.Addi (Reg.s3, Reg.s3, 1));
      B.place b next);

  Gen.checksum_reg b Reg.s3;
  Gen.checksum_reg b Reg.s4;
  Gen.exit0 b;

  (* v0 = parse(a0): a skewed recursion — parse(n) calls parse(n-1) and,
     when n is even, parse(n/2); heavy on returns *)
  B.place b parse;
  let base = B.fresh_label b in
  B.emit b (Inst.Slti (Reg.t5, Reg.a0, 1));
  B.bne b Reg.t5 Reg.zero base;
  B.push b Reg.ra;
  B.push b Reg.a0;
  B.emit b (Inst.Addi (Reg.a0, Reg.a0, -1));
  B.jal b parse;
  B.pop b Reg.a0;
  B.push b Reg.v0;
  let odd = B.fresh_label b in
  let join = B.fresh_label b in
  B.emit b (Inst.Andi (Reg.t5, Reg.a0, 1));
  B.bne b Reg.t5 Reg.zero odd;
  B.emit b (Inst.Srl (Reg.a0, Reg.a0, 1));
  B.jal b parse;
  B.j b join;
  B.place b odd;
  B.li b Reg.v0 1;
  B.place b join;
  B.pop b Reg.t6;
  B.emit b (Inst.Add (Reg.v0, Reg.v0, Reg.t6));
  B.pop b Reg.ra;
  B.ret b;
  B.place b base;
  B.li b Reg.v0 1;
  B.ret b;

  B.assemble b ~entry:main
