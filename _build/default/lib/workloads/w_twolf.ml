(* twolf stand-in: standard-cell place/route moves. A 16-way move-type
   switch (jump table) drives small grid updates, and every few moves a
   window-evaluation function runs — a mixed indirect-jump plus
   call/return profile between gcc and vpr. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "twolf"
let description = "16-way move dispatch over a cell grid + window eval calls"

let cells = 512
let n_moves = 16

let build ~size =
  let iters = max 16 (size / 32) in
  let b = B.create () in
  let grid = B.dlabel ~name:"grid" b in
  B.space b (4 * cells);
  B.align b 4;
  let handlers =
    List.init n_moves (fun i -> B.fresh_label ~name:(Printf.sprintf "mv%d" i) b)
  in
  let mtab = Gen.table_of_labels b ~name:"mtab" handlers in

  let main = B.here ~name:"main" b in
  let eval_window = B.fresh_label ~name:"eval_window" b in
  let cont = B.fresh_label b in

  (* s0=grid, s1=iters, s2=seed, s3=acc, s5=mtab, s6=i, s7=cell idx *)
  Gen.fill_table b ~table:mtab handlers;
  B.la b Reg.s0 grid;
  B.la b Reg.s5 mtab;
  B.li b Reg.s1 iters;
  B.li b Reg.s2 (size + 73);
  B.li b Reg.s3 0;

  (* init grid *)
  B.li b Reg.s6 0;
  B.li b Reg.t6 cells;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Sll (Reg.t2, Reg.s6, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0)));

  (* move loop *)
  B.li b Reg.s6 0;
  let loop = B.fresh_label b in
  let out = B.fresh_label b in
  B.place b loop;
  B.bge b Reg.s6 Reg.s1 out;
  Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
  (* s7 = interior cell index *)
  B.emit b (Inst.Andi (Reg.s7, Reg.t1, cells - 8));
  B.emit b (Inst.Addi (Reg.s7, Reg.s7, 2));
  (* move type *)
  B.emit b (Inst.Srl (Reg.t2, Reg.t1, 8));
  B.emit b (Inst.Andi (Reg.t2, Reg.t2, n_moves - 1));
  B.emit b (Inst.Sll (Reg.t2, Reg.t2, 2));
  B.emit b (Inst.Add (Reg.t2, Reg.s5, Reg.t2));
  B.emit b (Inst.Lw (Reg.t2, Reg.t2, 0));
  B.jr b Reg.t2;
  B.place b cont;
  (* every 4th move: evaluate a window *)
  let no_eval = B.fresh_label b in
  B.emit b (Inst.Andi (Reg.t3, Reg.s6, 3));
  B.bne b Reg.t3 Reg.zero no_eval;
  B.mv b Reg.a0 Reg.s7;
  B.jal b eval_window;
  B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0));
  B.place b no_eval;
  B.emit b (Inst.Addi (Reg.s6, Reg.s6, 1));
  B.j b loop;
  B.place b out;
  Gen.checksum_reg b Reg.s3;
  B.emit b (Inst.Lw (Reg.t0, Reg.s0, 64));
  Gen.checksum_reg b Reg.t0;
  Gen.exit0 b;

  (* move handlers: operate on grid[s7]; rejoin at cont *)
  let cell_addr dst =
    B.emit b (Inst.Sll (dst, Reg.s7, 2));
    B.emit b (Inst.Add (dst, Reg.s0, dst))
  in
  let h i body =
    B.place b (List.nth handlers i);
    cell_addr Reg.t4;
    body ();
    B.j b cont
  in
  h 0 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Addi (Reg.t5, Reg.t5, 5));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  h 1 (fun () ->
      (* swap with right neighbour *)
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Lw (Reg.t6, Reg.t4, 4));
      B.emit b (Inst.Sw (Reg.t6, Reg.t4, 0));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 4)));
  h 2 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, -4));
      B.emit b (Inst.Lw (Reg.t6, Reg.t4, 4));
      B.emit b (Inst.Add (Reg.t5, Reg.t5, Reg.t6));
      B.emit b (Inst.Srl (Reg.t5, Reg.t5, 1));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  h 3 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Xori (Reg.t5, Reg.t5, 0x249));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  h 4 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Sll (Reg.t6, Reg.t5, 3));
      B.emit b (Inst.Xor (Reg.t5, Reg.t5, Reg.t6));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  h 5 (fun () ->
      (* rotate three cells *)
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, -4));
      B.emit b (Inst.Lw (Reg.t6, Reg.t4, 0));
      B.emit b (Inst.Lw (Reg.t7, Reg.t4, 4));
      B.emit b (Inst.Sw (Reg.t7, Reg.t4, -4));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Sw (Reg.t6, Reg.t4, 4)));
  h 6 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.li b Reg.t6 13;
      B.emit b (Inst.Mul (Reg.t5, Reg.t5, Reg.t6));
      B.emit b (Inst.Addi (Reg.t5, Reg.t5, 1));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  h 7 (fun () ->
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Sub (Reg.t5, Reg.zero, Reg.t5));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  for i = 8 to n_moves - 1 do
    h i (fun () ->
        B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
        B.emit b (Inst.Xori (Reg.t5, Reg.t5, (i * 517) land 0xFFFF));
        B.emit b (Inst.Sll (Reg.t6, Reg.t5, (i mod 5) + 1));
        B.emit b (Inst.Add (Reg.t5, Reg.t5, Reg.t6));
        B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)))
  done;

  (* v0 = eval_window(a0): sum a 5-cell window around a0 *)
  B.place b eval_window;
  B.li b Reg.v0 0;
  B.emit b (Inst.Sll (Reg.t0, Reg.a0, 2));
  B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.t0));
  List.iter
    (fun off ->
      B.emit b (Inst.Lw (Reg.t1, Reg.t0, off));
      B.emit b (Inst.Xor (Reg.v0, Reg.v0, Reg.t1));
      B.emit b (Inst.Sra (Reg.t1, Reg.t1, 2));
      B.emit b (Inst.Add (Reg.v0, Reg.v0, Reg.t1)))
    [ -8; -4; 0; 4; 8 ];
  B.ret b;

  B.assemble b ~entry:main
