(** Shared building blocks for the synthetic SPEC CPU2000 stand-ins.

    All workloads are deterministic: randomness comes from an in-guest
    linear congruential generator, results are folded into the machine
    checksum via syscall 4, and every program ends with an explicit
    exit. Register discipline follows the VIA ABI ([$s*] for state that
    survives calls, [$t*] scratch, [$a*]/[$v*] for arguments/results);
    the translator-reserved registers are never touched — {!Builder}
    enforces that. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

val lcg_step : B.t -> seed:Reg.t -> tmp:Reg.t -> unit
(** [seed <- seed * 1103515245 + 12345] (mod 2^32). *)

val lcg_bits : B.t -> seed:Reg.t -> tmp:Reg.t -> dst:Reg.t -> unit
(** Step the LCG and put its top 15 useful bits in [dst]
    ([ (seed >> 16) & 0x7FFF ]). *)

val checksum_reg : B.t -> Reg.t -> unit
(** Fold a register into the machine checksum (syscall 4; clobbers
    [$a0], [$v0]). *)

val print_int_reg : B.t -> Reg.t -> unit
(** Print a register in decimal (clobbers [$a0], [$v0]). *)

val exit0 : B.t -> unit
(** Exit with code 0 (syscall 5). *)

val for_loop :
  B.t -> counter:Reg.t -> bound:Reg.t -> (unit -> unit) -> unit
(** [for_loop b ~counter ~bound body]: emits
    [while counter < bound do body (); counter++ done]. [counter] must
    be initialised by the caller; [body] must preserve [counter] and
    [bound]. *)

val table_of_labels : B.t -> name:string -> B.label list -> B.label
(** Emit a data-section word table that a startup shim fills with the
    absolute addresses of the given code labels (computed at assembly
    time via [la]+[sw] in {!fill_table}); returns the table label. *)

val fill_table : B.t -> table:B.label -> B.label list -> unit
(** Emit startup code storing each label's address into consecutive
    words of [table] (clobbers [$t8], [$t9]). *)
