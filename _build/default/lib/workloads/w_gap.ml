(* gap stand-in: a stack-based VM whose opcodes are implemented as
   functions reached through a function-pointer table — every VM
   instruction costs an indirect call and a return, the profile of
   interpreters built around op handlers. The VM data is a permutation
   composition workload (GAP is a group-theory system). *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "gap"
let description = "stack VM with function-per-opcode dispatch"

let n_ops = 12
let perm_len = 8

(* ops: 0 push-lcg, 1 add, 2 mul, 3 xor, 4 dup, 5 swap, 6 compose-perm,
   7 emit, 8-11 unary mixers. Generated host-side with guaranteed stack
   balance. *)
let gen_bytecode ~len ~seed =
  let s = ref seed in
  let rand () =
    s := ((!s * 1103515245) + 12345) land 0xFFFF_FFFF;
    (!s lsr 16) land 0x7FFF
  in
  let ops = ref [] in
  let depth = ref 0 in
  for _ = 1 to len do
    let candidates =
      if !depth = 0 then [ 0 ]
      else if !depth = 1 then [ 0; 4; 6; 7; 8; 9; 10; 11 ]
      else [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
    in
    let op = List.nth candidates (rand () mod List.length candidates) in
    (match op with
    | 0 -> incr depth
    | 1 | 2 | 3 | 7 -> decr depth
    | 4 -> incr depth
    | 5 | 6 | 8 | 9 | 10 | 11 -> ()
    | _ -> assert false);
    (* cap the stack depth to the VM's limit of 64 *)
    if !depth > 60 then begin
      ops := 7 :: !ops;
      decr depth
    end;
    ops := op :: !ops
  done;
  (* drain the stack, then stop *)
  let drain = List.init !depth (fun _ -> 7) in
  List.rev !ops @ drain

let build ~size =
  let reps = max 2 (size / 160) in
  let bytecode = gen_bytecode ~len:64 ~seed:(size + 5) in
  let b = B.create () in
  let code = B.dlabel ~name:"bytecode" b in
  List.iter (B.word b) bytecode;
  let code_len = List.length bytecode in
  let vstack = B.dlabel ~name:"vstack" b in
  B.space b (4 * 64);
  B.align b 4;
  let perm = B.dlabel ~name:"perm" b in
  (* two permutations of 0..7; composed repeatedly by op 6 *)
  List.iter (B.word b) [ 3; 1; 4; 0; 5; 2; 7; 6 ];
  List.iter (B.word b) [ 0; 0; 0; 0; 0; 0; 0; 0 ];

  let handlers =
    List.init n_ops (fun i -> B.fresh_label ~name:(Printf.sprintf "vop%d" i) b)
  in
  let ftab = Gen.table_of_labels b ~name:"ftab" handlers in

  let main = B.here ~name:"main" b in
  (* s0=bytecode, s1=vpc index, s2=vstack base, s3=stack depth,
     s4=seed, s5=ftab, s6=reps, s7=perm base *)
  Gen.fill_table b ~table:ftab handlers;
  B.la b Reg.s0 code;
  B.la b Reg.s2 vstack;
  B.la b Reg.s5 ftab;
  B.la b Reg.s7 perm;
  B.li b Reg.s4 (size + 99);
  B.li b Reg.s6 reps;
  (* identity into the second permutation *)
  B.li b Reg.t0 0;
  B.li b Reg.t1 perm_len;
  Gen.for_loop b ~counter:Reg.t0 ~bound:Reg.t1 (fun () ->
      B.emit b (Inst.Sll (Reg.t2, Reg.t0, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s7, Reg.t2));
      B.emit b (Inst.Sw (Reg.t0, Reg.t2, 32)));

  let outer = B.fresh_label b in
  let loop = B.fresh_label ~name:"vloop" b in
  let finish = B.fresh_label b in
  B.place b outer;
  B.li b Reg.s1 0;
  B.li b Reg.s3 0;
  B.place b loop;
  (* stop when vpc reaches the end of the bytecode *)
  B.li b Reg.t0 code_len;
  B.bge b Reg.s1 Reg.t0 finish;
  B.emit b (Inst.Sll (Reg.t1, Reg.s1, 2));
  B.emit b (Inst.Add (Reg.t1, Reg.s0, Reg.t1));
  B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
  B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
  B.emit b (Inst.Add (Reg.t1, Reg.s5, Reg.t1));
  B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
  B.emit b (Inst.Addi (Reg.s1, Reg.s1, 1));
  B.emit b (Inst.Jalr (Reg.ra, Reg.t1));
  B.j b loop;

  B.place b finish;
  B.emit b (Inst.Addi (Reg.s6, Reg.s6, -1));
  B.bne b Reg.s6 Reg.zero outer;
  (* checksum the composed permutation *)
  B.li b Reg.t0 0;
  B.li b Reg.t1 perm_len;
  Gen.for_loop b ~counter:Reg.t0 ~bound:Reg.t1 (fun () ->
      B.emit b (Inst.Sll (Reg.t2, Reg.t0, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s7, Reg.t2));
      B.emit b (Inst.Lw (Reg.t3, Reg.t2, 32));
      Gen.checksum_reg b Reg.t3);
  Gen.exit0 b;

  (* --- op handlers; stack slot i at vstack + 4*i, depth in s3 --- *)
  let top_addr dst =
    (* dst := address of the top slot (depth-1) *)
    B.emit b (Inst.Sll (dst, Reg.s3, 2));
    B.emit b (Inst.Add (dst, Reg.s2, dst));
    B.emit b (Inst.Addi (dst, dst, -4))
  in
  let h i body =
    B.place b (List.nth handlers i);
    body ();
    B.ret b
  in
  (* push-lcg *)
  h 0 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s4 ~tmp:Reg.t2 ~dst:Reg.t3;
      B.emit b (Inst.Sll (Reg.t4, Reg.s3, 2));
      B.emit b (Inst.Add (Reg.t4, Reg.s2, Reg.t4));
      B.emit b (Inst.Sw (Reg.t3, Reg.t4, 0));
      B.emit b (Inst.Addi (Reg.s3, Reg.s3, 1)));
  let binop mk =
    top_addr Reg.t4;
    B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
    B.emit b (Inst.Lw (Reg.t6, Reg.t4, -4));
    mk ();
    B.emit b (Inst.Sw (Reg.t6, Reg.t4, -4));
    B.emit b (Inst.Addi (Reg.s3, Reg.s3, -1))
  in
  h 1 (fun () -> binop (fun () -> B.emit b (Inst.Add (Reg.t6, Reg.t6, Reg.t5))));
  h 2 (fun () ->
      binop (fun () ->
          B.emit b (Inst.Mul (Reg.t6, Reg.t6, Reg.t5));
          B.emit b (Inst.Addi (Reg.t6, Reg.t6, 7))));
  h 3 (fun () -> binop (fun () -> B.emit b (Inst.Xor (Reg.t6, Reg.t6, Reg.t5))));
  (* dup *)
  h 4 (fun () ->
      top_addr Reg.t4;
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 4));
      B.emit b (Inst.Addi (Reg.s3, Reg.s3, 1)));
  (* swap *)
  h 5 (fun () ->
      top_addr Reg.t4;
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Lw (Reg.t6, Reg.t4, -4));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, -4));
      B.emit b (Inst.Sw (Reg.t6, Reg.t4, 0)));
  (* compose-perm: perm2 <- perm1 ∘ perm2, salted by the stack top *)
  h 6 (fun () ->
      top_addr Reg.t4;
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.li b Reg.t0 0;
      B.li b Reg.t1 perm_len;
      Gen.for_loop b ~counter:Reg.t0 ~bound:Reg.t1 (fun () ->
          B.emit b (Inst.Sll (Reg.t2, Reg.t0, 2));
          B.emit b (Inst.Add (Reg.t2, Reg.s7, Reg.t2));
          B.emit b (Inst.Lw (Reg.t3, Reg.t2, 32));   (* perm2[i] *)
          B.emit b (Inst.Sll (Reg.t3, Reg.t3, 2));
          B.emit b (Inst.Add (Reg.t3, Reg.s7, Reg.t3));
          B.emit b (Inst.Lw (Reg.t3, Reg.t3, 0));    (* perm1[perm2[i]] *)
          B.emit b (Inst.Sw (Reg.t3, Reg.t2, 32)));
      (* salt the top so the value stream depends on compositions *)
      B.emit b (Inst.Lw (Reg.t2, Reg.s7, 32));
      B.emit b (Inst.Add (Reg.t5, Reg.t5, Reg.t2));
      B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)));
  (* unary mixers on the stack top *)
  for i = 8 to n_ops - 1 do
    h i (fun () ->
        top_addr Reg.t4;
        B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
        B.emit b (Inst.Xori (Reg.t5, Reg.t5, (i * 73) land 0xFFFF));
        (if i land 1 = 0 then B.emit b (Inst.Sll (Reg.t6, Reg.t5, 2))
         else B.emit b (Inst.Srl (Reg.t6, Reg.t5, 2)));
        B.emit b (Inst.Add (Reg.t5, Reg.t5, Reg.t6));
        B.emit b (Inst.Sw (Reg.t5, Reg.t4, 0)))
  done;

  (* emit: pop and checksum *)
  h 7 (fun () ->
      top_addr Reg.t4;
      B.emit b (Inst.Lw (Reg.t5, Reg.t4, 0));
      B.emit b (Inst.Addi (Reg.s3, Reg.s3, -1));
      Gen.checksum_reg b Reg.t5);

  B.assemble b ~entry:main
