(* Parameterised indirect-branch microbenchmark generator.

   Builds terminating-by-construction programs whose IB behaviour is
   dialled in by [params]: how many static indirect-jump sites, how many
   distinct targets each cycles through, how much indirect-call and
   recursion (return) traffic accompanies them. Used by the sweep
   benchmarks and as the program generator for the translation
   equivalence property tests. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

type params = {
  ib_sites : int;          (* static indirect-jump sites, 1..16 *)
  targets : int;           (* distinct targets in the jump table, 2..64 *)
  fns : int;               (* functions reachable by indirect call, 0..8 *)
  recursion_depth : int;   (* extra return traffic per iteration, 0..8 *)
  iters : int;
  seed : int;
}

let default =
  { ib_sites = 4; targets = 16; fns = 4; recursion_depth = 2; iters = 500; seed = 1 }

let clamp lo hi v = max lo (min hi v)

let normalise p =
  {
    ib_sites = clamp 1 16 p.ib_sites;
    targets = clamp 2 64 p.targets;
    fns = clamp 0 8 p.fns;
    recursion_depth = clamp 0 8 p.recursion_depth;
    iters = clamp 1 1_000_000 p.iters;
    seed = p.seed land 0xFFFF;
  }

let build p =
  let p = normalise p in
  let b = B.create () in
  let cases =
    List.init p.targets (fun i -> B.fresh_label ~name:(Printf.sprintf "case%d" i) b)
  in
  let jtab = Gen.table_of_labels b ~name:"jtab" cases in
  let fns =
    List.init (max 1 p.fns) (fun i ->
        B.fresh_label ~name:(Printf.sprintf "fn%d" i) b)
  in
  let ftab = Gen.table_of_labels b ~name:"ftab" fns in

  let main = B.here ~name:"main" b in
  let recurse = B.fresh_label ~name:"recurse" b in

  (* s0=i, s1=iters, s2=seed, s3=acc, s5=jtab, s6=ftab *)
  Gen.fill_table b ~table:jtab cases;
  Gen.fill_table b ~table:ftab fns;
  B.la b Reg.s5 jtab;
  B.la b Reg.s6 ftab;
  B.li b Reg.s0 0;
  B.li b Reg.s1 p.iters;
  B.li b Reg.s2 (p.seed + 7);
  B.li b Reg.s3 0;

  Gen.for_loop b ~counter:Reg.s0 ~bound:Reg.s1 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.s4;
      (* the indirect-jump sites, statically unrolled *)
      for site = 0 to p.ib_sites - 1 do
        let cont = B.fresh_label b in
        (* each site derives its own index so sites see different
           target streams *)
        B.emit b (Inst.Addi (Reg.t1, Reg.s4, site * 3));
        B.li b Reg.t2 p.targets;
        B.emit b (Inst.Rem (Reg.t1, Reg.t1, Reg.t2));
        B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
        B.emit b (Inst.Add (Reg.t1, Reg.s5, Reg.t1));
        B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
        (* the case handler returns control via jr to t9, which we point
           at the continuation *)
        B.la b Reg.t9 cont;
        B.jr b Reg.t1;
        B.place b cont
      done;
      (* indirect call *)
      if p.fns > 0 then begin
        B.emit b (Inst.Andi (Reg.t1, Reg.s4, 7));
        B.li b Reg.t2 p.fns;
        B.emit b (Inst.Rem (Reg.t1, Reg.t1, Reg.t2));
        B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
        B.emit b (Inst.Add (Reg.t1, Reg.s6, Reg.t1));
        B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
        B.mv b Reg.a0 Reg.s4;
        B.emit b (Inst.Jalr (Reg.ra, Reg.t1));
        B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0))
      end;
      (* recursion for return traffic *)
      if p.recursion_depth > 0 then begin
        B.li b Reg.a0 p.recursion_depth;
        B.jal b recurse;
        B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0))
      end);

  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;

  (* case handlers: fold a distinct constant, then jr $t9 back — each
     case is itself one more indirect jump, mirroring threaded code *)
  List.iteri
    (fun i c ->
      B.place b c;
      B.emit b (Inst.Xori (Reg.t3, Reg.s3, (i * 97) land 0xFFFF));
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t3));
      B.jr b Reg.t9)
    cases;

  (* functions: distinct bodies *)
  List.iteri
    (fun i f ->
      B.place b f;
      B.emit b (Inst.Addi (Reg.v0, Reg.a0, i + 1));
      B.emit b (Inst.Xori (Reg.v0, Reg.v0, i * 29));
      B.ret b)
    fns;

  (* v0 = recurse(a0): linear recursion *)
  B.place b recurse;
  let base = B.fresh_label b in
  B.emit b (Inst.Slti (Reg.t4, Reg.a0, 1));
  B.bne b Reg.t4 Reg.zero base;
  B.push b Reg.ra;
  B.push b Reg.a0;
  B.emit b (Inst.Addi (Reg.a0, Reg.a0, -1));
  B.jal b recurse;
  B.pop b Reg.t5;
  B.emit b (Inst.Add (Reg.v0, Reg.v0, Reg.t5));
  B.pop b Reg.ra;
  B.ret b;
  B.place b base;
  B.li b Reg.v0 1;
  B.ret b;

  B.assemble b ~entry:main
