(* eon stand-in: C++-style virtual dispatch. Objects carry vtable
   pointers; hot loops load the vtable, load a method slot, and make an
   indirect call. The object array is segmented by class with a little
   noise, so each of the four unrolled call sites is quasi-monomorphic —
   the profile real C++ exhibits and the one inline target prediction
   and per-branch IBTCs exploit. 8 classes x 4 methods = 32 targets. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "eon"
let description = "virtual method dispatch over a segmented object array"

let n_classes = 8
let n_methods = 4  (* per class *)
let n_objects = 128
let n_sites = 4    (* unrolled call sites, one per object segment *)

let build ~size =
  let rounds = max 2 (size / (n_objects * 8)) in
  let b = B.create () in
  let methods =
    List.init (n_classes * n_methods) (fun i ->
        B.fresh_label ~name:(Printf.sprintf "m%d_%d" (i / n_methods) (i mod n_methods)) b)
  in
  let vtables = Gen.table_of_labels b ~name:"vtables" methods in
  (* objects: [vtable_base_offset, value] pairs *)
  let objects = B.dlabel ~name:"objects" b in
  B.space b (8 * n_objects);
  B.align b 4;

  let main = B.here ~name:"main" b in
  (* s0=objects, s1=vtables, s2=seed, s3=acc, s4=round, s5=rounds *)
  Gen.fill_table b ~table:vtables methods;
  B.la b Reg.s0 objects;
  B.la b Reg.s1 vtables;
  B.li b Reg.s2 (size + 23);
  B.li b Reg.s3 0;

  (* init: object i belongs to segment i / (n_objects/n_sites); its
     class is the segment's home class, except 1 draw in 8 is random *)
  let seg_len = n_objects / n_sites in
  B.li b Reg.t5 0;
  B.li b Reg.t6 n_objects;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      (* home class = 2 * segment index *)
      B.li b Reg.t2 seg_len;
      B.emit b (Inst.Div (Reg.t2, Reg.t5, Reg.t2));
      B.emit b (Inst.Sll (Reg.t2, Reg.t2, 1));
      let use_home = B.fresh_label b in
      B.emit b (Inst.Andi (Reg.t3, Reg.t1, 7));
      B.bne b Reg.t3 Reg.zero use_home;
      B.emit b (Inst.Andi (Reg.t2, Reg.t1, n_classes - 1));
      B.place b use_home;
      (* vtable byte offset = class * n_methods * 4 *)
      B.emit b (Inst.Sll (Reg.t2, Reg.t2, 4));
      B.emit b (Inst.Sll (Reg.t3, Reg.t5, 3));
      B.emit b (Inst.Add (Reg.t3, Reg.s0, Reg.t3));
      B.emit b (Inst.Sw (Reg.t2, Reg.t3, 0));
      B.emit b (Inst.Sw (Reg.t1, Reg.t3, 4)));

  (* hot loop: per round, each unrolled site walks its own segment and
     calls method (round mod n_methods) on every object *)
  B.li b Reg.s4 0;
  B.li b Reg.s5 rounds;
  Gen.for_loop b ~counter:Reg.s4 ~bound:Reg.s5 (fun () ->
      for site = 0 to n_sites - 1 do
        B.li b Reg.s6 (site * seg_len);
        B.li b Reg.s7 ((site + 1) * seg_len);
        Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s7 (fun () ->
            B.emit b (Inst.Sll (Reg.t0, Reg.s6, 3));
            B.emit b (Inst.Add (Reg.a0, Reg.s0, Reg.t0));  (* obj ptr *)
            B.emit b (Inst.Lw (Reg.t1, Reg.a0, 0));        (* vtable off *)
            B.emit b (Inst.Add (Reg.t1, Reg.s1, Reg.t1));
            (* each site invokes one fixed method slot, as a C++ call
               site does; polymorphism comes only from the object's class *)
            B.emit b (Inst.Lw (Reg.t1, Reg.t1, 4 * (site mod n_methods)));
            B.emit b (Inst.Jalr (Reg.ra, Reg.t1));         (* virtual call *)
            B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0)))
      done);

  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;

  (* methods: a0 = object pointer; update value, return contribution.
     Bodies are formulaic but distinct per (class, method). *)
  List.iteri
    (fun i m ->
      B.place b m;
      B.emit b (Inst.Lw (Reg.t3, Reg.a0, 4));
      (match i mod 4 with
      | 0 -> B.emit b (Inst.Addi (Reg.t3, Reg.t3, (i * 7) + 3))
      | 1 -> B.emit b (Inst.Xori (Reg.t3, Reg.t3, (i * 131) land 0xFFFF))
      | 2 ->
          B.li b Reg.t4 ((2 * i) + 5);
          B.emit b (Inst.Mul (Reg.t3, Reg.t3, Reg.t4));
          B.emit b (Inst.Addi (Reg.t3, Reg.t3, 1))
      | _ ->
          B.emit b (Inst.Sll (Reg.t4, Reg.t3, (i mod 13) + 1));
          B.emit b (Inst.Xor (Reg.t3, Reg.t3, Reg.t4)));
      B.emit b (Inst.Sw (Reg.t3, Reg.a0, 4));
      B.mv b Reg.v0 Reg.t3;
      B.ret b)
    methods;

  B.assemble b ~entry:main
