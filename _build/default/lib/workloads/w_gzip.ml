(* gzip stand-in: run-length compression over a run-prone pseudo-random
   buffer (helper call per emitted pair), followed by an LZ77-style
   hash-chain match pass over the compressed stream — the deflate inner
   loop's profile: hash computation, head-table probes, and match
   extension loops. Low indirect-branch density throughout. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "gzip"
let description = "RLE + LZ77 hash-chain matching over a run-prone buffer"
let hash_buckets = 64

let build ~size =
  let n = max 64 size in
  let b = B.create () in
  let src = B.dlabel ~name:"src" b in
  B.space b n;
  B.align b 4;
  let dst = B.dlabel ~name:"dst" b in
  B.space b (2 * n);
  B.align b 4;
  let heads = B.dlabel ~name:"heads" b in
  B.space b (4 * hash_buckets);

  let main = B.here ~name:"main" b in
  let emit_pair = B.fresh_label ~name:"emit_pair" b in

  (* s0=i, s1=n, s2=in-guest checksum, s3=output index, s4=src, s5=dst,
     s6=lcg seed *)
  B.la b Reg.s4 src;
  B.la b Reg.s5 dst;
  B.li b Reg.s6 42;
  B.li b Reg.s1 n;
  B.li b Reg.s2 0;
  B.li b Reg.s3 0;

  (* fill src with a 4-symbol alphabet (natural runs) *)
  B.li b Reg.s0 0;
  Gen.for_loop b ~counter:Reg.s0 ~bound:Reg.s1 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s6 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Srl (Reg.t1, Reg.t1, 3));
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, 3));
      B.emit b (Inst.Add (Reg.t2, Reg.s4, Reg.s0));
      B.emit b (Inst.Sb (Reg.t1, Reg.t2, 0)));

  (* RLE scan: i in s0, current char t3, run length t4 *)
  B.li b Reg.s0 0;
  let scan = B.fresh_label b in
  let scan_done = B.fresh_label b in
  let run = B.fresh_label b in
  let run_done = B.fresh_label b in
  B.place b scan;
  B.bge b Reg.s0 Reg.s1 scan_done;
  B.emit b (Inst.Add (Reg.t2, Reg.s4, Reg.s0));
  B.emit b (Inst.Lbu (Reg.t3, Reg.t2, 0));
  B.li b Reg.t4 1;
  B.place b run;
  B.emit b (Inst.Add (Reg.t5, Reg.s0, Reg.t4));
  B.bge b Reg.t5 Reg.s1 run_done;
  B.emit b (Inst.Add (Reg.t6, Reg.s4, Reg.t5));
  B.emit b (Inst.Lbu (Reg.t6, Reg.t6, 0));
  B.bne b Reg.t6 Reg.t3 run_done;
  B.emit b (Inst.Slti (Reg.t7, Reg.t4, 255));
  B.beq b Reg.t7 Reg.zero run_done;
  B.emit b (Inst.Addi (Reg.t4, Reg.t4, 1));
  B.j b run;
  B.place b run_done;
  B.mv b Reg.a0 Reg.t3;
  B.mv b Reg.a1 Reg.t4;
  B.emit b (Inst.Add (Reg.s0, Reg.s0, Reg.t4));
  B.jal b emit_pair;
  B.j b scan;
  B.place b scan_done;

  (* checksum the compressed stream in-guest, then hand it over *)
  B.li b Reg.t0 0;
  let ck = B.fresh_label b in
  let ck_done = B.fresh_label b in
  B.place b ck;
  B.bge b Reg.t0 Reg.s3 ck_done;
  B.emit b (Inst.Add (Reg.t1, Reg.s5, Reg.t0));
  B.emit b (Inst.Lbu (Reg.t1, Reg.t1, 0));
  B.li b Reg.t2 31;
  B.emit b (Inst.Mul (Reg.s2, Reg.s2, Reg.t2));
  B.emit b (Inst.Add (Reg.s2, Reg.s2, Reg.t1));
  B.emit b (Inst.Addi (Reg.t0, Reg.t0, 1));
  B.j b ck;
  B.place b ck_done;
  Gen.checksum_reg b Reg.s2;
  Gen.checksum_reg b Reg.s3;

  (* LZ77-ish pass over the compressed stream: hash 3-byte windows into
     a head table (storing position+1 so 0 means empty), and when the
     bucket already holds a position, extend the match byte by byte.
     s7 accumulates total match length. *)
  B.la b Reg.s6 heads;
  B.li b Reg.s7 0;
  B.li b Reg.t0 0;  (* p *)
  B.emit b (Inst.Addi (Reg.t9, Reg.s3, -3));  (* limit = out - 3 *)
  let lz = B.fresh_label b in
  let lz_done = B.fresh_label b in
  let no_match = B.fresh_label b in
  B.place b lz;
  B.bge b Reg.t0 Reg.t9 lz_done;
  (* h = (b0 ^ b1<<2 ^ b2<<4) & 63 *)
  B.emit b (Inst.Add (Reg.t1, Reg.s5, Reg.t0));
  B.emit b (Inst.Lbu (Reg.t2, Reg.t1, 0));
  B.emit b (Inst.Lbu (Reg.t3, Reg.t1, 1));
  B.emit b (Inst.Sll (Reg.t3, Reg.t3, 2));
  B.emit b (Inst.Xor (Reg.t2, Reg.t2, Reg.t3));
  B.emit b (Inst.Lbu (Reg.t3, Reg.t1, 2));
  B.emit b (Inst.Sll (Reg.t3, Reg.t3, 4));
  B.emit b (Inst.Xor (Reg.t2, Reg.t2, Reg.t3));
  B.emit b (Inst.Andi (Reg.t2, Reg.t2, hash_buckets - 1));
  (* probe and update the head table *)
  B.emit b (Inst.Sll (Reg.t2, Reg.t2, 2));
  B.emit b (Inst.Add (Reg.t2, Reg.s6, Reg.t2));
  B.emit b (Inst.Lw (Reg.t3, Reg.t2, 0));     (* prev + 1, or 0 *)
  B.emit b (Inst.Addi (Reg.t4, Reg.t0, 1));
  B.emit b (Inst.Sw (Reg.t4, Reg.t2, 0));
  B.beq b Reg.t3 Reg.zero no_match;
  B.emit b (Inst.Addi (Reg.t3, Reg.t3, -1));  (* prev position *)
  (* extend the match while bytes agree and p+len < out *)
  B.li b Reg.t4 0;  (* len *)
  let extend = B.fresh_label b in
  let extended = B.fresh_label b in
  B.place b extend;
  (* deflate-style cap on match length *)
  B.emit b (Inst.Slti (Reg.t5, Reg.t4, 16));
  B.beq b Reg.t5 Reg.zero extended;
  B.emit b (Inst.Add (Reg.t5, Reg.t0, Reg.t4));
  B.bge b Reg.t5 Reg.s3 extended;
  B.emit b (Inst.Add (Reg.t5, Reg.t1, Reg.t4));
  B.emit b (Inst.Lbu (Reg.t5, Reg.t5, 0));
  B.emit b (Inst.Add (Reg.t6, Reg.s5, Reg.t3));
  B.emit b (Inst.Add (Reg.t6, Reg.t6, Reg.t4));
  B.emit b (Inst.Lbu (Reg.t6, Reg.t6, 0));
  B.bne b Reg.t5 Reg.t6 extended;
  B.emit b (Inst.Addi (Reg.t4, Reg.t4, 1));
  B.j b extend;
  B.place b extended;
  B.emit b (Inst.Add (Reg.s7, Reg.s7, Reg.t4));
  B.place b no_match;
  B.emit b (Inst.Addi (Reg.t0, Reg.t0, 1));
  B.j b lz;
  B.place b lz_done;
  Gen.checksum_reg b Reg.s7;
  Gen.exit0 b;

  (* emit_pair (a0 = symbol, a1 = run length): append two bytes *)
  B.place b emit_pair;
  B.emit b (Inst.Add (Reg.t0, Reg.s5, Reg.s3));
  B.emit b (Inst.Sb (Reg.a0, Reg.t0, 0));
  B.emit b (Inst.Sb (Reg.a1, Reg.t0, 1));
  B.emit b (Inst.Addi (Reg.s3, Reg.s3, 2));
  B.ret b;

  B.assemble b ~entry:main
