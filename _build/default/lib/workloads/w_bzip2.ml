(* bzip2 stand-in: counting sort followed by a move-to-front transform,
   the branchy scan/shift inner loops of block-sorting compressors.
   Very low indirect-branch density. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "bzip2"
let description = "counting sort + move-to-front transform"

let alphabet = 16

let build ~size =
  let n = max 64 size in
  let b = B.create () in
  let src = B.dlabel ~name:"src" b in
  B.space b n;
  B.align b 4;
  let sorted = B.dlabel ~name:"sorted" b in
  B.space b n;
  B.align b 4;
  let freq = B.dlabel ~name:"freq" b in
  B.space b (4 * alphabet);
  let mtf = B.dlabel ~name:"mtf" b in
  B.space b alphabet;
  B.align b 4;

  let main = B.here ~name:"main" b in
  (* s0=src, s1=n, s2=seed, s3=acc, s4=freq, s5=sorted, s6=mtf *)
  B.la b Reg.s0 src;
  B.la b Reg.s4 freq;
  B.la b Reg.s5 sorted;
  B.la b Reg.s6 mtf;
  B.li b Reg.s1 n;
  B.li b Reg.s2 (size + 3);
  B.li b Reg.s3 0;

  (* fill src; count frequencies *)
  B.li b Reg.t5 0;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.s1 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, alphabet - 1));
      B.emit b (Inst.Add (Reg.t2, Reg.s0, Reg.t5));
      B.emit b (Inst.Sb (Reg.t1, Reg.t2, 0));
      B.emit b (Inst.Sll (Reg.t2, Reg.t1, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s4, Reg.t2));
      B.emit b (Inst.Lw (Reg.t3, Reg.t2, 0));
      B.emit b (Inst.Addi (Reg.t3, Reg.t3, 1));
      B.emit b (Inst.Sw (Reg.t3, Reg.t2, 0)));

  (* exclusive prefix sums over freq *)
  B.li b Reg.t0 0;  (* running total *)
  B.li b Reg.t5 0;
  B.li b Reg.t6 alphabet;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      B.emit b (Inst.Sll (Reg.t1, Reg.t5, 2));
      B.emit b (Inst.Add (Reg.t1, Reg.s4, Reg.t1));
      B.emit b (Inst.Lw (Reg.t2, Reg.t1, 0));
      B.emit b (Inst.Sw (Reg.t0, Reg.t1, 0));
      B.emit b (Inst.Add (Reg.t0, Reg.t0, Reg.t2)));

  (* stable counting sort into sorted[] *)
  B.li b Reg.t5 0;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.s1 (fun () ->
      B.emit b (Inst.Add (Reg.t1, Reg.s0, Reg.t5));
      B.emit b (Inst.Lbu (Reg.t1, Reg.t1, 0));
      B.emit b (Inst.Sll (Reg.t2, Reg.t1, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s4, Reg.t2));
      B.emit b (Inst.Lw (Reg.t3, Reg.t2, 0));
      B.emit b (Inst.Add (Reg.t4, Reg.s5, Reg.t3));
      B.emit b (Inst.Sb (Reg.t1, Reg.t4, 0));
      B.emit b (Inst.Addi (Reg.t3, Reg.t3, 1));
      B.emit b (Inst.Sw (Reg.t3, Reg.t2, 0)));

  (* init MTF list to identity *)
  B.li b Reg.t5 0;
  B.li b Reg.t6 alphabet;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      B.emit b (Inst.Add (Reg.t1, Reg.s6, Reg.t5));
      B.emit b (Inst.Sb (Reg.t5, Reg.t1, 0)));

  (* move-to-front over sorted[]: find symbol (scan), shift, emit index *)
  B.li b Reg.t5 0;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.s1 (fun () ->
      B.emit b (Inst.Add (Reg.t0, Reg.s5, Reg.t5));
      B.emit b (Inst.Lbu (Reg.t0, Reg.t0, 0));  (* symbol *)
      (* find index of symbol in mtf list *)
      B.li b Reg.t1 0;
      let find = B.fresh_label b in
      let found = B.fresh_label b in
      B.place b find;
      B.emit b (Inst.Add (Reg.t2, Reg.s6, Reg.t1));
      B.emit b (Inst.Lbu (Reg.t3, Reg.t2, 0));
      B.beq b Reg.t3 Reg.t0 found;
      B.emit b (Inst.Addi (Reg.t1, Reg.t1, 1));
      B.j b find;
      B.place b found;
      (* shift mtf[0..idx-1] up by one, put symbol at front *)
      let shift = B.fresh_label b in
      let shifted = B.fresh_label b in
      B.mv b Reg.t2 Reg.t1;
      B.place b shift;
      B.beq b Reg.t2 Reg.zero shifted;
      B.emit b (Inst.Add (Reg.t3, Reg.s6, Reg.t2));
      B.emit b (Inst.Lbu (Reg.t4, Reg.t3, -1));
      B.emit b (Inst.Sb (Reg.t4, Reg.t3, 0));
      B.emit b (Inst.Addi (Reg.t2, Reg.t2, -1));
      B.j b shift;
      B.place b shifted;
      B.emit b (Inst.Sb (Reg.t0, Reg.s6, 0));
      (* fold the emitted index *)
      B.li b Reg.t3 33;
      B.emit b (Inst.Mul (Reg.s3, Reg.s3, Reg.t3));
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t1)));

  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;
  B.assemble b ~entry:main
