(* equake stand-in (SPEC CFP2000 183.equake): seismic wave propagation =
   sparse matrix-vector products in fixed point. Irregular indexed loads
   (gather) over a CSR-ish structure, time-stepped — memory-intensive
   numeric code with no indirect branches. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "equake"
let description = "fixed-point sparse matrix-vector time stepping"

let nodes = 256
let nnz_per_row = 8

let build ~size =
  let steps = max 2 (size / 15_000) in
  let b = B.create () in
  (* CSR-ish: for each row, nnz_per_row (col, val) pairs *)
  let cols = B.dlabel ~name:"cols" b in
  B.space b (4 * nodes * nnz_per_row);
  let vals = B.dlabel ~name:"vals" b in
  B.space b (4 * nodes * nnz_per_row);
  let x = B.dlabel ~name:"x" b in
  B.space b (4 * nodes);
  let y = B.dlabel ~name:"y" b in
  B.space b (4 * nodes);

  let main = B.here ~name:"main" b in
  (* s0=cols, s1=vals, s4=x, s5=y, s2=seed, s3=acc *)
  B.la b Reg.s0 cols;
  B.la b Reg.s1 vals;
  B.la b Reg.s4 x;
  B.la b Reg.s5 y;
  B.li b Reg.s2 (size + 91);
  B.li b Reg.s3 0;

  (* init matrix (random columns, small Q8.8 values) and x *)
  B.li b Reg.t5 0;
  B.li b Reg.t6 (nodes * nnz_per_row);
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, nodes - 1));
      B.emit b (Inst.Sll (Reg.t2, Reg.t5, 2));
      B.emit b (Inst.Add (Reg.t3, Reg.s0, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t3, 0));
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, 0xFF));
      B.emit b (Inst.Add (Reg.t3, Reg.s1, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t3, 0)));
  B.li b Reg.t5 0;
  B.li b Reg.t6 nodes;
  Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      B.emit b (Inst.Andi (Reg.t1, Reg.t1, 0x3FF));
      B.emit b (Inst.Sll (Reg.t2, Reg.t5, 2));
      B.emit b (Inst.Add (Reg.t2, Reg.s4, Reg.t2));
      B.emit b (Inst.Sw (Reg.t1, Reg.t2, 0)));

  (* time steps: y = A x (gather); then x <- (x + y>>8) / 2, fold y *)
  B.li b Reg.s6 0;
  B.li b Reg.s7 steps;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s7 (fun () ->
      B.li b Reg.t8 0;  (* row *)
      B.li b Reg.t9 nodes;
      Gen.for_loop b ~counter:Reg.t8 ~bound:Reg.t9 (fun () ->
          B.li b Reg.t7 0;  (* row sum *)
          B.li b Reg.t5 0;
          B.li b Reg.t6 nnz_per_row;
          Gen.for_loop b ~counter:Reg.t5 ~bound:Reg.t6 (fun () ->
              B.li b Reg.t0 nnz_per_row;
              B.emit b (Inst.Mul (Reg.t0, Reg.t8, Reg.t0));
              B.emit b (Inst.Add (Reg.t0, Reg.t0, Reg.t5));
              B.emit b (Inst.Sll (Reg.t0, Reg.t0, 2));
              B.emit b (Inst.Add (Reg.t1, Reg.s0, Reg.t0));
              B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));   (* col *)
              B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
              B.emit b (Inst.Add (Reg.t1, Reg.s4, Reg.t1));
              B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));   (* x[col]: gather *)
              B.emit b (Inst.Add (Reg.t2, Reg.s1, Reg.t0));
              B.emit b (Inst.Lw (Reg.t2, Reg.t2, 0));   (* val *)
              B.emit b (Inst.Mul (Reg.t1, Reg.t1, Reg.t2));
              B.emit b (Inst.Add (Reg.t7, Reg.t7, Reg.t1)));
          B.emit b (Inst.Srl (Reg.t7, Reg.t7, 8));
          B.emit b (Inst.Sll (Reg.t0, Reg.t8, 2));
          B.emit b (Inst.Add (Reg.t0, Reg.s5, Reg.t0));
          B.emit b (Inst.Sw (Reg.t7, Reg.t0, 0)));
      (* x <- (x + y) / 2; fold a sample of y *)
      B.li b Reg.t8 0;
      Gen.for_loop b ~counter:Reg.t8 ~bound:Reg.t9 (fun () ->
          B.emit b (Inst.Sll (Reg.t0, Reg.t8, 2));
          B.emit b (Inst.Add (Reg.t1, Reg.s4, Reg.t0));
          B.emit b (Inst.Add (Reg.t2, Reg.s5, Reg.t0));
          B.emit b (Inst.Lw (Reg.t3, Reg.t1, 0));
          B.emit b (Inst.Lw (Reg.t4, Reg.t2, 0));
          B.emit b (Inst.Add (Reg.t3, Reg.t3, Reg.t4));
          B.emit b (Inst.Srl (Reg.t3, Reg.t3, 1));
          B.emit b (Inst.Andi (Reg.t3, Reg.t3, 0xFFFF));
          B.emit b (Inst.Sw (Reg.t3, Reg.t1, 0)));
      B.emit b (Inst.Lw (Reg.t0, Reg.s5, 128));
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.t0)));

  Gen.checksum_reg b Reg.s3;
  B.emit b (Inst.Lw (Reg.t0, Reg.s4, 64));
  Gen.checksum_reg b Reg.t0;
  Gen.exit0 b;
  B.assemble b ~entry:main
