module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let lcg_step b ~seed ~tmp =
  B.li b tmp 1103515245;
  B.emit b (Inst.Mul (seed, seed, tmp));
  B.emit b (Inst.Addi (seed, seed, 12345))

let lcg_bits b ~seed ~tmp ~dst =
  lcg_step b ~seed ~tmp;
  B.emit b (Inst.Srl (dst, seed, 16));
  B.emit b (Inst.Andi (dst, dst, 0x7FFF))

let checksum_reg b r =
  B.mv b Reg.a0 r;
  B.li b Reg.v0 4;
  B.syscall b

let print_int_reg b r =
  B.mv b Reg.a0 r;
  B.li b Reg.v0 1;
  B.syscall b

let exit0 b =
  B.li b Reg.a0 0;
  B.li b Reg.v0 5;
  B.syscall b

let for_loop b ~counter ~bound body =
  let top = B.fresh_label b in
  let out = B.fresh_label b in
  B.place b top;
  B.bge b counter bound out;
  body ();
  B.emit b (Inst.Addi (counter, counter, 1));
  B.j b top;
  B.place b out

let table_of_labels b ~name labels =
  let tbl = B.dlabel ~name b in
  List.iter (fun _ -> B.word b 0) labels;
  tbl

let fill_table b ~table labels =
  B.la b Reg.t8 table;
  List.iteri
    (fun i l ->
      B.la b Reg.t9 l;
      B.emit b (Inst.Sw (Reg.t9, Reg.t8, 4 * i)))
    labels
