(* vortex stand-in: an object-oriented database. Records live in a
   binary search tree; operations run through layered direct calls
   (main -> db op -> recursive tree walk) and record updates dispatch
   through a small method table. Call/return dominated with a sprinkle
   of indirect calls — the paper's return-mechanism benchmarks move
   vortex the most. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "vortex"
let description = "OO database: BST inserts/lookups through layered calls"

let max_records = 4096

(* record: [key, val, left_addr, right_addr] = 16 bytes *)
let build ~size =
  let records = max 16 (min max_records (size / 32)) in
  let b = B.create () in
  let pool = B.dlabel ~name:"pool" b in
  B.space b (16 * max_records);
  B.align b 4;
  let root_slot = B.dlabel ~name:"root" b in
  B.word b 0;

  let updaters =
    List.init 8 (fun i -> B.fresh_label ~name:(Printf.sprintf "upd%d" i) b)
  in
  let utab = Gen.table_of_labels b ~name:"utab" updaters in

  let main = B.here ~name:"main" b in
  let db_insert = B.fresh_label ~name:"db_insert" b in
  let tree_insert = B.fresh_label ~name:"tree_insert" b in
  let db_lookup = B.fresh_label ~name:"db_lookup" b in
  let tree_lookup = B.fresh_label ~name:"tree_lookup" b in

  (* s0=pool, s1=root slot addr, s2=seed, s3=acc, s4=next free record,
     s5=#records, s7=utab *)
  Gen.fill_table b ~table:utab updaters;
  B.la b Reg.s0 pool;
  B.la b Reg.s1 root_slot;
  B.la b Reg.s7 utab;
  B.li b Reg.s2 (size + 41);
  B.li b Reg.s3 0;
  B.li b Reg.s4 0;
  B.li b Reg.s5 records;

  (* insert phase *)
  B.li b Reg.s6 0;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.s5 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.a0;
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.a1;
      B.jal b db_insert);

  (* lookup + update phase *)
  B.li b Reg.s6 0;
  B.emit b (Inst.Sll (Reg.t0, Reg.s5, 1));
  B.mv b Reg.t6 Reg.t0;
  Gen.for_loop b ~counter:Reg.s6 ~bound:Reg.t6 (fun () ->
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.a0;
      B.jal b db_lookup;
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0)));

  Gen.checksum_reg b Reg.s3;
  Gen.checksum_reg b Reg.s4;
  Gen.exit0 b;

  (* db_insert(a0=key, a1=val): allocate record, descend from root *)
  B.place b db_insert;
  B.push b Reg.ra;
  B.emit b (Inst.Sll (Reg.t0, Reg.s4, 4));
  B.emit b (Inst.Add (Reg.t0, Reg.s0, Reg.t0));
  B.emit b (Inst.Addi (Reg.s4, Reg.s4, 1));
  B.emit b (Inst.Sw (Reg.a0, Reg.t0, 0));
  B.emit b (Inst.Sw (Reg.a1, Reg.t0, 4));
  B.emit b (Inst.Sw (Reg.zero, Reg.t0, 8));
  B.emit b (Inst.Sw (Reg.zero, Reg.t0, 12));
  B.mv b Reg.a1 Reg.t0;          (* a1 = new record *)
  B.mv b Reg.a2 Reg.s1;          (* a2 = slot holding subtree pointer *)
  B.jal b tree_insert;
  B.pop b Reg.ra;
  B.ret b;

  (* tree_insert(a0=key, a1=record, a2=slot): recursive descent *)
  B.place b tree_insert;
  let ti_empty = B.fresh_label b in
  B.emit b (Inst.Lw (Reg.t1, Reg.a2, 0));
  B.beq b Reg.t1 Reg.zero ti_empty;
  B.emit b (Inst.Lw (Reg.t2, Reg.t1, 0));   (* node key *)
  let go_right = B.fresh_label b in
  B.bge b Reg.a0 Reg.t2 go_right;
  B.emit b (Inst.Addi (Reg.a2, Reg.t1, 8));
  B.push b Reg.ra;
  B.jal b tree_insert;
  B.pop b Reg.ra;
  B.ret b;
  B.place b go_right;
  B.emit b (Inst.Addi (Reg.a2, Reg.t1, 12));
  B.push b Reg.ra;
  B.jal b tree_insert;
  B.pop b Reg.ra;
  B.ret b;
  B.place b ti_empty;
  B.emit b (Inst.Sw (Reg.a1, Reg.a2, 0));
  B.ret b;

  (* db_lookup(a0=key): find closest record; on hit, dispatch an
     updater through the method table on (key & 7) *)
  B.place b db_lookup;
  B.push b Reg.ra;
  B.emit b (Inst.Lw (Reg.a1, Reg.s1, 0));
  B.jal b tree_lookup;
  let missed = B.fresh_label b in
  B.beq b Reg.v0 Reg.zero missed;
  (* v0 = record addr: virtual-ish update *)
  B.mv b Reg.a0 Reg.v0;
  B.emit b (Inst.Lw (Reg.t1, Reg.a0, 0));
  B.emit b (Inst.Andi (Reg.t1, Reg.t1, 7));
  B.emit b (Inst.Sll (Reg.t1, Reg.t1, 2));
  B.emit b (Inst.Add (Reg.t1, Reg.s7, Reg.t1));
  B.emit b (Inst.Lw (Reg.t1, Reg.t1, 0));
  B.emit b (Inst.Jalr (Reg.ra, Reg.t1));
  B.pop b Reg.ra;
  B.ret b;
  B.place b missed;
  B.li b Reg.v0 0;
  B.pop b Reg.ra;
  B.ret b;

  (* tree_lookup(a0=key, a1=node): recursive; v0 = record addr or 0 *)
  B.place b tree_lookup;
  let tl_nil = B.fresh_label b in
  let tl_right = B.fresh_label b in
  let tl_hit = B.fresh_label b in
  B.beq b Reg.a1 Reg.zero tl_nil;
  B.emit b (Inst.Lw (Reg.t2, Reg.a1, 0));
  B.beq b Reg.t2 Reg.a0 tl_hit;
  B.bge b Reg.a0 Reg.t2 tl_right;
  B.emit b (Inst.Lw (Reg.a1, Reg.a1, 8));
  B.push b Reg.ra;
  B.jal b tree_lookup;
  B.pop b Reg.ra;
  B.ret b;
  B.place b tl_right;
  B.emit b (Inst.Lw (Reg.a1, Reg.a1, 12));
  B.push b Reg.ra;
  B.jal b tree_lookup;
  B.pop b Reg.ra;
  B.ret b;
  B.place b tl_hit;
  B.mv b Reg.v0 Reg.a1;
  B.ret b;
  B.place b tl_nil;
  B.li b Reg.v0 0;
  B.ret b;

  (* updaters: a0 = record; return its (updated) value *)
  let u i body =
    B.place b (List.nth updaters i);
    B.emit b (Inst.Lw (Reg.v0, Reg.a0, 4));
    body ();
    B.emit b (Inst.Sw (Reg.v0, Reg.a0, 4));
    B.ret b
  in
  u 0 (fun () -> B.emit b (Inst.Addi (Reg.v0, Reg.v0, 7)));
  u 1 (fun () -> B.emit b (Inst.Xori (Reg.v0, Reg.v0, 0xFF)));
  u 2 (fun () -> B.emit b (Inst.Sll (Reg.v0, Reg.v0, 1)));
  u 3 (fun () -> B.emit b (Inst.Srl (Reg.v0, Reg.v0, 1)));
  u 4 (fun () ->
      B.li b Reg.t2 29;
      B.emit b (Inst.Mul (Reg.v0, Reg.v0, Reg.t2));
      B.emit b (Inst.Addi (Reg.v0, Reg.v0, 1)));
  u 5 (fun () -> B.emit b (Inst.Nor (Reg.v0, Reg.v0, Reg.zero)));
  u 6 (fun () ->
      B.emit b (Inst.Sll (Reg.t2, Reg.v0, 7));
      B.emit b (Inst.Xor (Reg.v0, Reg.v0, Reg.t2)));
  u 7 (fun () ->
      B.emit b (Inst.Srl (Reg.t2, Reg.v0, 3));
      B.emit b (Inst.Add (Reg.v0, Reg.v0, Reg.t2)));

  B.assemble b ~entry:main
