(** The workload registry: the fourteen SPEC CPU2000 stand-ins (12 INT + 2 FP).

    Each entry carries two calibrated size parameters: [test_size]
    (tens of thousands of dynamic instructions — fast enough for unit
    tests over every SDT configuration) and [ref_size] (hundreds of
    thousands — what the benchmark harness runs). Workloads are
    deterministic; the same size always produces the same output and
    checksum, natively or translated. *)

module Program = Sdt_isa.Program

type entry = {
  name : string;
  description : string;
  build : size:int -> Program.t;
  test_size : int;
  ref_size : int;
}

val all : entry list
(** In the paper's customary SPEC INT order — gzip, vpr, gcc, mcf,
    crafty, parser, eon, perlbmk, gap, vortex, bzip2, twolf — followed
    by two CFP2000 stand-ins, art and equake. *)

val find : string -> entry option
val names : string list

val program : entry -> [ `Test | `Ref ] -> Program.t
