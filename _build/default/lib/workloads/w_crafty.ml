(* crafty stand-in: bitboard game-tree search. A negamax search with a
   real recursion tree explores positions; at each node, per-piece move
   generators are reached through a function-pointer table (indirect
   calls over twelve targets) and run shift/mask bit tricks plus a
   popcount helper call. The profile is crafty's: search recursion
   (returns), type dispatch (indirect calls), and bit-twiddling ALU
   work over table-resident state. *)

module B = Sdt_isa.Builder
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst

let name = "crafty"
let description = "bitboard negamax search with per-piece move dispatch"

let n_pieces = 12
let search_depth = 3

let build ~size =
  let positions = max 4 (size / 340) in
  let b = B.create () in
  let handlers =
    List.init n_pieces (fun i -> B.fresh_label ~name:(Printf.sprintf "piece%d" i) b)
  in
  let ftab = Gen.table_of_labels b ~name:"ftab" handlers in

  let main = B.here ~name:"main" b in
  let popcount = B.fresh_label ~name:"popcount" b in
  let gen_moves = B.fresh_label ~name:"gen_moves" b in
  let negamax = B.fresh_label ~name:"negamax" b in

  (* s0=i, s1=positions, s2=seed, s3=acc, s5=ftab *)
  Gen.fill_table b ~table:ftab handlers;
  B.la b Reg.s5 ftab;
  B.li b Reg.s0 0;
  B.li b Reg.s1 positions;
  B.li b Reg.s2 (size + 11);
  B.li b Reg.s3 0;

  Gen.for_loop b ~counter:Reg.s0 ~bound:Reg.s1 (fun () ->
      (* root board = 32 random bits: two LCG draws *)
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t1;
      Gen.lcg_bits b ~seed:Reg.s2 ~tmp:Reg.t0 ~dst:Reg.t2;
      B.emit b (Inst.Sll (Reg.a0, Reg.t1, 17));
      B.emit b (Inst.Or (Reg.a0, Reg.a0, Reg.t2));
      B.li b Reg.a1 search_depth;
      B.jal b negamax;
      B.emit b (Inst.Add (Reg.s3, Reg.s3, Reg.v0)));

  Gen.checksum_reg b Reg.s3;
  Gen.exit0 b;

  (* v0 = negamax(a0 = board, a1 = depth):
       if depth = 0: evaluate = popcount(board)
       else: for each of 3 candidate moves m in {1, 2, 3}:
               child = gen_moves(board, piece(board, m))
               score = max(score, m*7 - negamax(child, depth-1))
     The per-node work mirrors a chess engine: move generation through
     the piece dispatch table, evaluation by a material count. *)
  B.place b negamax;
  let leaf = B.fresh_label b in
  B.beq b Reg.a1 Reg.zero leaf;
  B.push b Reg.ra;
  B.push b Reg.s6;  (* best score *)
  B.push b Reg.s7;  (* move counter *)
  B.push b Reg.a0;
  B.push b Reg.a1;
  B.li b Reg.s6 (-1_000_000);
  B.li b Reg.s7 1;
  let move_loop = B.fresh_label b in
  let move_done = B.fresh_label b in
  B.place b move_loop;
  B.emit b (Inst.Slti (Reg.t0, Reg.s7, 4));
  B.beq b Reg.t0 Reg.zero move_done;
  (* reload the node's board *)
  B.emit b (Inst.Lw (Reg.a0, Reg.sp, 4));
  (* perturb by the move number so children differ *)
  B.emit b (Inst.Sllv (Reg.t1, Reg.a0, Reg.s7));
  B.emit b (Inst.Xor (Reg.a0, Reg.a0, Reg.t1));
  B.jal b gen_moves;            (* v0 = child board *)
  B.mv b Reg.a0 Reg.v0;
  B.emit b (Inst.Lw (Reg.a1, Reg.sp, 0));
  B.emit b (Inst.Addi (Reg.a1, Reg.a1, -1));
  B.jal b negamax;              (* v0 = child score *)
  (* score = move*7 - child score; keep the max *)
  B.li b Reg.t2 7;
  B.emit b (Inst.Mul (Reg.t2, Reg.t2, Reg.s7));
  B.emit b (Inst.Sub (Reg.t2, Reg.t2, Reg.v0));
  let no_better = B.fresh_label b in
  B.bge b Reg.s6 Reg.t2 no_better;
  B.mv b Reg.s6 Reg.t2;
  B.place b no_better;
  B.emit b (Inst.Addi (Reg.s7, Reg.s7, 1));
  B.j b move_loop;
  B.place b move_done;
  B.mv b Reg.v0 Reg.s6;
  B.pop b Reg.a1;
  B.pop b Reg.a0;
  B.pop b Reg.s7;
  B.pop b Reg.s6;
  B.pop b Reg.ra;
  B.ret b;
  B.place b leaf;
  B.push b Reg.ra;
  B.jal b popcount;             (* material evaluation *)
  B.pop b Reg.ra;
  B.ret b;

  (* v0 = gen_moves(a0 = board): dispatch on the board's piece type
     (its low bits, modulo the piece count) through the function table;
     the handler computes the successor board. *)
  B.place b gen_moves;
  B.push b Reg.ra;
  B.emit b (Inst.Andi (Reg.t3, Reg.a0, 31));
  B.li b Reg.t4 n_pieces;
  B.emit b (Inst.Rem (Reg.t3, Reg.t3, Reg.t4));
  B.emit b (Inst.Sll (Reg.t3, Reg.t3, 2));
  B.emit b (Inst.Add (Reg.t3, Reg.s5, Reg.t3));
  B.emit b (Inst.Lw (Reg.t3, Reg.t3, 0));
  B.emit b (Inst.Jalr (Reg.ra, Reg.t3));
  B.pop b Reg.ra;
  B.ret b;

  (* piece handlers: a0 = board; v0 = successor board. *)
  let h i mask_gen =
    B.place b (List.nth handlers i);
    mask_gen ();
    B.ret b
  in
  (* pawn: forward shifts *)
  h 0 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 8));
      B.emit b (Inst.Or (Reg.v0, Reg.a0, Reg.t5)));
  (* knight: L-shaped shifts *)
  h 1 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 6));
      B.emit b (Inst.Srl (Reg.t6, Reg.a0, 10));
      B.emit b (Inst.Xor (Reg.v0, Reg.t5, Reg.t6)));
  (* bishop: diagonal smear *)
  h 2 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 9));
      B.emit b (Inst.Or (Reg.t5, Reg.a0, Reg.t5));
      B.emit b (Inst.Sll (Reg.t6, Reg.t5, 18));
      B.emit b (Inst.Or (Reg.v0, Reg.t5, Reg.t6)));
  (* rook: rank/file smear *)
  h 3 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 1));
      B.emit b (Inst.Or (Reg.t5, Reg.a0, Reg.t5));
      B.emit b (Inst.Srl (Reg.t6, Reg.t5, 16));
      B.emit b (Inst.Or (Reg.v0, Reg.t5, Reg.t6)));
  (* queen: rook|bishop-ish *)
  h 4 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 7));
      B.emit b (Inst.Srl (Reg.t6, Reg.a0, 9));
      B.emit b (Inst.Or (Reg.t5, Reg.a0, Reg.t5));
      B.emit b (Inst.Or (Reg.v0, Reg.t5, Reg.t6)));
  (* king: one-step neighbourhood *)
  h 5 (fun () ->
      B.emit b (Inst.Sll (Reg.t5, Reg.a0, 1));
      B.emit b (Inst.Srl (Reg.t6, Reg.a0, 1));
      B.emit b (Inst.Or (Reg.t5, Reg.t5, Reg.t6));
      B.emit b (Inst.Or (Reg.v0, Reg.a0, Reg.t5)));
  (* fairy pieces: formulaic shift/mask mixes to widen the target set *)
  for i = 6 to n_pieces - 1 do
    h i (fun () ->
        B.emit b (Inst.Sll (Reg.t5, Reg.a0, (i mod 14) + 2));
        B.emit b (Inst.Srl (Reg.t6, Reg.a0, (i mod 9) + 3));
        B.emit b (Inst.Xor (Reg.v0, Reg.t5, Reg.t6));
        B.emit b (Inst.Ori (Reg.v0, Reg.v0, (i * 257) land 0xFFFF)))
  done;

  (* v0 = popcount(a0), Kernighan loop *)
  B.place b popcount;
  B.li b Reg.v0 0;
  let pl = B.fresh_label b in
  let pd = B.fresh_label b in
  B.place b pl;
  B.beq b Reg.a0 Reg.zero pd;
  B.emit b (Inst.Addi (Reg.t7, Reg.a0, -1));
  B.emit b (Inst.And (Reg.a0, Reg.a0, Reg.t7));
  B.emit b (Inst.Addi (Reg.v0, Reg.v0, 1));
  B.j b pl;
  B.place b pd;
  B.ret b;

  B.assemble b ~entry:main
