(** Parameterised indirect-branch microbenchmark generator.

    Builds terminating-by-construction programs whose IB behaviour is
    dialled in by {!params}: how many static indirect-jump sites, how
    many distinct targets each cycles through, how much indirect-call
    and recursion (return) traffic accompanies them. Used by the sweep
    benchmarks and as the program generator for the translation
    equivalence property tests. *)

type params = {
  ib_sites : int;          (** static indirect-jump sites, clamped to 1..16 *)
  targets : int;           (** distinct jump-table targets, 2..64 *)
  fns : int;               (** functions reachable by indirect call, 0..8 *)
  recursion_depth : int;   (** extra return traffic per iteration, 0..8 *)
  iters : int;
  seed : int;
}

val default : params

val normalise : params -> params
(** Clamp every field into its supported range (applied by {!build}). *)

val build : params -> Sdt_isa.Program.t
