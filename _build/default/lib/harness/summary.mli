(** Small numeric helpers the experiments share. *)

val geomean : float list -> float
(** Geometric mean; 1.0 on the empty list. *)

val mean : float list -> float
val per_mille : int -> int -> float
(** [per_mille part whole]: occurrences per 1000, as a float. *)

val pct : int -> int -> float
(** [pct part whole] in percent. *)

val f2 : float -> string
(** Two-decimal rendering. *)

val f1 : float -> string
val millions : int -> string
(** e.g. [millions 1_234_000 = "1.23M"]. *)
