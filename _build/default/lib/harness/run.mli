(** Measurement drivers: run a program natively and under the SDT with a
    cycle accountant, collect everything the experiments report, and
    verify translated correctness against the native run.

    Native runs are memoised per (program identity is by build, so
    callers pass a [key]) — every SDT measurement needs its native
    counterpart for normalisation. *)

module Arch = Sdt_march.Arch
module Program = Sdt_isa.Program
module Config = Sdt_core.Config
module Stats = Sdt_core.Stats

type native = {
  n_instrs : int;
  n_cycles : int;
  n_ijumps : int;
  n_icalls : int;
  n_returns : int;
  n_cond : int;
  n_output : string;
  n_checksum : int;
}

type sdt = {
  s_cycles : int;
  s_instrs : int;  (** machine steps, including emitted SDT code *)
  s_runtime_cycles : int;
  s_icache_misses : int;
  s_dcache_misses : int;
  s_cond_misp : int;
  s_ind_misp : int;
  s_ras_misp : int;
  s_code_bytes : int;
  s_stats : Stats.t;
  s_mech : (string * float) list;
  slowdown : float;  (** s_cycles / native cycles on the same arch *)
}

exception Mismatch of string
(** An SDT run diverged from its native run — a translator bug; the
    harness refuses to report numbers for wrong executions. *)

val native : arch:Arch.t -> key:string -> (unit -> Program.t) -> native
(** Memoised on [(key, arch.name)]. *)

val sdt :
  arch:Arch.t -> cfg:Config.t -> key:string -> (unit -> Program.t) -> sdt
(** Runs natively first (memoised), then translated; checks output and
    checksum; computes [slowdown]. @raise Mismatch on divergence. *)

val clear_cache : unit -> unit

val max_steps : int ref
(** Step budget per run (default 2 * 10^9). *)
