lib/harness/table.mli:
