lib/harness/summary.mli:
