lib/harness/summary.ml: List Printf
