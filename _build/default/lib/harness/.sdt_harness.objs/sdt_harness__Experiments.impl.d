lib/harness/experiments.ml: List Option Run Sdt_core Sdt_march Sdt_workloads String Summary Table
