lib/harness/table.ml: Buffer List Option String
