lib/harness/run.ml: Hashtbl Printf Sdt_core Sdt_isa Sdt_machine Sdt_march
