lib/harness/run.mli: Sdt_core Sdt_isa Sdt_march
