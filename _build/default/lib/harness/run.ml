module Arch = Sdt_march.Arch
module Timing = Sdt_march.Timing
module Program = Sdt_isa.Program
module Machine = Sdt_machine.Machine
module Loader = Sdt_machine.Loader
module Config = Sdt_core.Config
module Stats = Sdt_core.Stats
module Runtime = Sdt_core.Runtime

type native = {
  n_instrs : int;
  n_cycles : int;
  n_ijumps : int;
  n_icalls : int;
  n_returns : int;
  n_cond : int;
  n_output : string;
  n_checksum : int;
}

type sdt = {
  s_cycles : int;
  s_instrs : int;
  s_runtime_cycles : int;
  s_icache_misses : int;
  s_dcache_misses : int;
  s_cond_misp : int;
  s_ind_misp : int;
  s_ras_misp : int;
  s_code_bytes : int;
  s_stats : Stats.t;
  s_mech : (string * float) list;
  slowdown : float;
}

exception Mismatch of string

let max_steps = ref 2_000_000_000
let cache : (string * string, native) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let native ~arch ~key build =
  let ck = (key, arch.Arch.name) in
  match Hashtbl.find_opt cache ck with
  | Some n -> n
  | None ->
      let timing = Timing.create arch in
      let m = Loader.load ~timing (build ()) in
      Machine.run ~max_steps:!max_steps m;
      let c = m.Machine.c in
      let n =
        {
          n_instrs = c.Machine.instructions;
          n_cycles = Timing.cycles timing;
          n_ijumps = c.Machine.ijumps;
          n_icalls = c.Machine.icalls;
          n_returns = c.Machine.returns;
          n_cond = c.Machine.cond_branches;
          n_output = Machine.output m;
          n_checksum = m.Machine.checksum;
        }
      in
      Hashtbl.replace cache ck n;
      n

let sdt ~arch ~cfg ~key build =
  let nat = native ~arch ~key build in
  let timing = Timing.create arch in
  let rt = Runtime.create ~cfg ~arch ~timing (build ()) in
  Runtime.run ~max_steps:!max_steps rt;
  let m = Runtime.machine rt in
  if Machine.output m <> nat.n_output || m.Machine.checksum <> nat.n_checksum
  then
    raise
      (Mismatch
         (Printf.sprintf "%s under %s on %s diverged from native" key
            (Config.describe cfg) arch.Arch.name));
  {
    s_cycles = Timing.cycles timing;
    s_instrs = m.Machine.c.Machine.instructions;
    s_runtime_cycles = Timing.runtime_cycles timing;
    s_icache_misses = Timing.icache_misses timing;
    s_dcache_misses = Timing.dcache_misses timing;
    s_cond_misp = Timing.cond_mispredicts timing;
    s_ind_misp = Timing.indirect_mispredicts timing;
    s_ras_misp = Timing.ras_mispredicts timing;
    s_code_bytes = Runtime.code_bytes rt;
    s_stats = Runtime.stats rt;
    s_mech = Runtime.mech_stats rt;
    slowdown = float_of_int (Timing.cycles timing) /. float_of_int nat.n_cycles;
  }
