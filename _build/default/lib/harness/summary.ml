let geomean = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let per_mille part whole =
  if whole = 0 then 0.0 else 1000.0 *. float_of_int part /. float_of_int whole

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let millions n = Printf.sprintf "%.2fM" (float_of_int n /. 1e6)
