(** Plain-text table rendering for the reproduced paper artefacts. *)

type t = {
  title : string;
  note : string;  (** one-line interpretation aid printed under the title *)
  headers : string list;
  rows : string list list;
}

val make :
  title:string -> ?note:string -> headers:string list -> string list list -> t

val render : t -> string
(** Fixed-width columns, a rule under the headers, right-aligned numeric
    cells (cells parsing as floats), left-aligned text. *)

val print : t -> unit

val to_csv : t -> string
(** Comma-separated rendering (headers + rows); cells containing commas
    or quotes are quoted. *)
