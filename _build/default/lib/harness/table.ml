type t = {
  title : string;
  note : string;
  headers : string list;
  rows : string list list;
}

let make ~title ?(note = "") ~headers rows = { title; note; headers; rows }

let is_numeric s = match float_of_string_opt s with Some _ -> true | None -> false

let render t =
  let all = t.headers :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           let pad = w - String.length cell in
           if is_numeric cell then String.make pad ' ' ^ cell
           else cell ^ String.make pad ' ')
         widths)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  if t.note <> "" then Buffer.add_string buf (t.note ^ "\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf
    (String.make (List.fold_left ( + ) (2 * (ncols - 1)) widths) '-' ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) t.rows;
  Buffer.contents buf

let print t = print_string (render t ^ "\n")

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: t.rows)) ^ "\n"
