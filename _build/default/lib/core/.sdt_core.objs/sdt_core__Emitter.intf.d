lib/core/emitter.mli: Sdt_isa Sdt_machine
