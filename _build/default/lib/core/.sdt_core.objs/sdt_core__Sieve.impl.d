lib/core/sieve.ml: Config Context Emitter Env Hashtbl Layout Sdt_isa Sdt_machine Sdt_march Stats
