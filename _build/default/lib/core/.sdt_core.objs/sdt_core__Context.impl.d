lib/core/context.ml: Emitter Env Layout Sdt_isa Sdt_march
