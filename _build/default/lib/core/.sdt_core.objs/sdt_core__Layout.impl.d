lib/core/layout.ml:
