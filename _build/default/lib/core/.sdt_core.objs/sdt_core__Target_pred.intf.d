lib/core/target_pred.mli: Emitter Env
