lib/core/config.mli:
