lib/core/dispatch.mli: Env
