lib/core/retcache.ml: Emitter Env Layout Sdt_isa Sdt_machine
