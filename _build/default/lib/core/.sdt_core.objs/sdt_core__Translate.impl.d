lib/core/translate.ml: Config Emitter Env Hashtbl Layout List Option Printf Retcache Sdt_isa Sdt_machine Sdt_march Shadow_stack Stats Target_pred
