lib/core/context.mli: Env
