lib/core/dispatch.ml: Context Emitter Env Layout Sdt_isa Sdt_machine Sdt_march Stats
