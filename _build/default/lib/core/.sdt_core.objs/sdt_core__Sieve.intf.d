lib/core/sieve.mli: Config Env
