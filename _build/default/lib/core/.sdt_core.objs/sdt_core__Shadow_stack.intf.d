lib/core/shadow_stack.mli: Emitter Env
