lib/core/retcache.mli: Emitter Env
