lib/core/ibtc.mli: Config Env
