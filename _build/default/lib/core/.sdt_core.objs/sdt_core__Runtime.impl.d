lib/core/runtime.ml: Bytes Config Dispatch Emitter Env Hashtbl Ibtc Layout List Option Printf Retcache Sdt_isa Sdt_machine Sdt_march Shadow_stack Sieve Stats Translate
