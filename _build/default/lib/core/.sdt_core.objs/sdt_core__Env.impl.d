lib/core/env.ml: Config Emitter Hashtbl Layout Sdt_isa Sdt_machine Sdt_march Stats
