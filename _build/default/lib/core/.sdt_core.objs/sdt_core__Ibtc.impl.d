lib/core/ibtc.ml: Config Context Emitter Env Hashtbl Layout List Option Sdt_isa Sdt_machine Sdt_march Stats
