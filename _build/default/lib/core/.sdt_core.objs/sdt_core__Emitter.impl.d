lib/core/emitter.ml: Hashtbl List Printf Sdt_isa Sdt_machine
