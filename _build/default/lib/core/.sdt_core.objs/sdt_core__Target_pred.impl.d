lib/core/target_pred.ml: Array Emitter Env Sdt_isa Sdt_machine Sdt_march Stats
