lib/core/layout.mli:
