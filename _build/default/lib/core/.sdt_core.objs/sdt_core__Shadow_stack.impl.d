lib/core/shadow_stack.ml: Emitter Env Layout Sdt_isa Sdt_machine
