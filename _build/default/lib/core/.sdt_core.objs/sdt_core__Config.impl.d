lib/core/config.ml: Printf Result
