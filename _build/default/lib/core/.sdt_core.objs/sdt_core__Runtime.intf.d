lib/core/runtime.mli: Config Env Sdt_isa Sdt_machine Sdt_march Stats
