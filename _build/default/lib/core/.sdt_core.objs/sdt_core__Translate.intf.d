lib/core/translate.mli: Env Retcache Shadow_stack
