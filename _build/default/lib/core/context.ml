module Inst = Sdt_isa.Inst
module Reg = Sdt_isa.Reg
module Arch = Sdt_march.Arch

(* On a register-windowed architecture only [context_regs] registers
   are saved/restored in emitted code (the window shift covers the
   rest); saving a prefix of the register file models that cost. The
   values are unchanged across the switch, so which subset is
   save/restored does not affect correctness. *)
let regs_to_switch (env : Env.t) = min 31 env.Env.arch.Arch.context_regs

let emit_save (env : Env.t) =
  let em = env.Env.em in
  Emitter.li32 em Reg.k1 env.Env.layout.Layout.ctx_base;
  for r = 1 to regs_to_switch env do
    if r <> Reg.k1 then Emitter.emit em (Inst.Sw (r, Reg.k1, 4 * r))
  done

let emit_tail (env : Env.t) ~(tail : Env.tail) =
  match tail with
  | Env.Tail_jr -> Emitter.emit env.Env.em (Inst.Jr Reg.k1)
  | Env.Tail_jalr_ra -> Emitter.emit env.Env.em (Inst.Jalr (Reg.ra, Reg.k1))

let emit_restore_no_jump (env : Env.t) =
  let em = env.Env.em in
  Emitter.li32 em Reg.k1 env.Env.layout.Layout.ctx_base;
  for r = 1 to regs_to_switch env do
    if r <> Reg.k1 then Emitter.emit em (Inst.Lw (r, Reg.k1, 4 * r))
  done;
  Emitter.li32 em Reg.k1 env.Env.layout.Layout.result_slot;
  Emitter.emit em (Inst.Lw (Reg.k1, Reg.k1, 0))

let emit_restore_and_jump (env : Env.t) ~tail =
  emit_restore_no_jump env;
  emit_tail env ~tail

let max_save_restore_cost_insts = 2 + 30 + 2 + 30 + 2 + 1 + 1
