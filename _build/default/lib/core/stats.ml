type t = {
  mutable blocks_translated : int;
  mutable insts_translated : int;
  mutable links : int;
  mutable dispatch_entries : int;
  mutable ibtc_misses_full : int;
  mutable ibtc_misses_fast : int;
  mutable ibtc_tables : int;
  mutable sieve_misses : int;
  mutable sieve_stubs : int;
  mutable retcache_fallbacks : int;
  mutable shadow_fallbacks : int;
  mutable pred_fills : int;
  mutable pred_exhausted_sites : int;
  mutable flushes : int;
  mutable ib_sites : int;
}

let create () =
  {
    blocks_translated = 0;
    insts_translated = 0;
    links = 0;
    dispatch_entries = 0;
    ibtc_misses_full = 0;
    ibtc_misses_fast = 0;
    ibtc_tables = 0;
    sieve_misses = 0;
    sieve_stubs = 0;
    retcache_fallbacks = 0;
    shadow_fallbacks = 0;
    pred_fills = 0;
    pred_exhausted_sites = 0;
    flushes = 0;
    ib_sites = 0;
  }

let reset t =
  t.blocks_translated <- 0;
  t.insts_translated <- 0;
  t.links <- 0;
  t.dispatch_entries <- 0;
  t.ibtc_misses_full <- 0;
  t.ibtc_misses_fast <- 0;
  t.ibtc_tables <- 0;
  t.sieve_misses <- 0;
  t.sieve_stubs <- 0;
  t.retcache_fallbacks <- 0;
  t.shadow_fallbacks <- 0;
  t.pred_fills <- 0;
  t.pred_exhausted_sites <- 0;
  t.flushes <- 0;
  t.ib_sites <- 0

let total_ib_misses t =
  t.dispatch_entries + t.ibtc_misses_full + t.ibtc_misses_fast + t.sieve_misses
  + t.retcache_fallbacks + t.shadow_fallbacks

let pp ppf t =
  Format.fprintf ppf
    "@[<v>blocks translated: %d@,app insts translated: %d@,links patched: \
     %d@,dispatch entries: %d@,ibtc misses (full/fast): %d/%d@,ibtc tables: \
     %d@,sieve misses: %d@,sieve stubs: %d@,retcache fallbacks: %d@,shadow \
     fallbacks: %d@,pred fills: %d@,pred exhausted sites: %d@,flushes: \
     %d@,static IB sites: %d@]"
    t.blocks_translated t.insts_translated t.links t.dispatch_entries
    t.ibtc_misses_full t.ibtc_misses_fast t.ibtc_tables t.sieve_misses
    t.sieve_stubs t.retcache_fallbacks t.shadow_fallbacks t.pred_fills
    t.pred_exhausted_sites t.flushes t.ib_sites
