type ibtc_miss_policy = Full_switch | Fast_reload
type ibtc_hash = Shift_mask | Multiplicative

type ibtc = {
  entries : int;
  ways : int;
  shared : bool;
  per_site_entries : int;
  miss : ibtc_miss_policy;
  hash : ibtc_hash;
  inline_lookup : bool;
}

type sieve = { buckets : int; insert_at_head : bool }
type mechanism = Dispatch | Ibtc of ibtc | Sieve of sieve

type return_policy =
  | As_ib
  | Return_cache of { entries : int }
  | Shadow_stack of { depth : int }
  | Fast_return

type spill_mode = Spill_auto | Spill_always | Spill_never

type t = {
  mech : mechanism;
  returns : return_policy;
  pred_depth : int;
  link_direct : bool;
  follow_direct_jumps : bool;
  spill : spill_mode;
  block_limit : int;
  code_capacity : int;
  count_memops : bool;
  profile_ib_sites : bool;
  shepherd : bool;
}

let default_ibtc =
  {
    entries = 4096;
    ways = 1;
    shared = true;
    per_site_entries = 64;
    miss = Fast_reload;
    hash = Shift_mask;
    inline_lookup = true;
  }

let default_sieve = { buckets = 4096; insert_at_head = true }

let default =
  {
    mech = Ibtc default_ibtc;
    returns = Return_cache { entries = 4096 };
    pred_depth = 0;
    link_direct = true;
    follow_direct_jumps = false;
    spill = Spill_auto;
    block_limit = 64;
    code_capacity = 0x0050_0000;
    count_memops = false;
    profile_ib_sites = false;
    shepherd = false;
  }

let baseline =
  {
    mech = Dispatch;
    returns = As_ib;
    pred_depth = 0;
    link_direct = true;
    follow_direct_jumps = false;
    spill = Spill_auto;
    block_limit = 64;
    code_capacity = 0x0050_0000;
    count_memops = false;
    profile_ib_sites = false;
    shepherd = false;
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate t =
  let ( let* ) r f = Result.bind r f in
  let ensure cond msg = if cond then Ok () else Error msg in
  let* () =
    match t.mech with
    | Dispatch -> Ok ()
    | Ibtc i ->
        let* () = ensure (is_pow2 i.entries) "ibtc entries must be a power of two" in
        let* () = ensure (i.ways = 1 || i.ways = 2) "ibtc ways must be 1 or 2" in
        let* () =
          ensure (i.entries >= 4 * i.ways) "ibtc entries too small for ways"
        in
        let* () =
          ensure (i.entries >= 4 && i.entries <= 1 lsl 16)
            "ibtc entries must be in [4, 65536] (16-bit mask immediates)"
        in
        ensure
          (i.shared
          || (is_pow2 i.per_site_entries
             && i.per_site_entries >= 4
             && i.per_site_entries <= 1 lsl 16))
          "per-site ibtc entries must be a power of two in [4, 65536]"
    | Sieve s ->
        let* () = ensure (is_pow2 s.buckets) "sieve buckets must be a power of two" in
        ensure
          (s.buckets >= 4 && s.buckets <= 1 lsl 16)
          "sieve buckets must be in [4, 65536] (16-bit mask immediates)"
  in
  let* () =
    match t.returns with
    | As_ib | Fast_return -> Ok ()
    | Return_cache { entries } ->
        ensure
          (is_pow2 entries && entries >= 4 && entries <= 1 lsl 16)
          "return cache entries must be a power of two in [4, 65536]"
    | Shadow_stack { depth } ->
        ensure (depth > 0 && depth <= 1 lsl 16) "shadow stack depth out of range"
  in
  let* () =
    ensure
      (not (t.shepherd && t.returns = Fast_return))
      "shepherding cannot police fast returns (they bypass the translator)"
  in
  let* () = ensure (t.pred_depth >= 0 && t.pred_depth <= 4) "pred_depth in [0,4]" in
  let* () = ensure (t.block_limit >= 1) "block_limit must be positive" in
  ensure (t.code_capacity >= 0x400) "code_capacity too small"

let describe t =
  let mech =
    match t.mech with
    | Dispatch -> "dispatch"
    | Ibtc i ->
        Printf.sprintf "ibtc(%s%s,%s,%s,%s)"
          (if i.shared then string_of_int i.entries
           else Printf.sprintf "per-site:%d" i.per_site_entries)
          (if i.ways = 2 then ",2way" else "")
          (if i.shared then "shared" else "per-branch")
          (match i.miss with Full_switch -> "full" | Fast_reload -> "fast")
          (if i.inline_lookup then "inline" else "routine")
    | Sieve s ->
        Printf.sprintf "sieve(%d,%s)" s.buckets
          (if s.insert_at_head then "head" else "tail")
  in
  let ret =
    match t.returns with
    | As_ib -> "ret:as-ib"
    | Return_cache { entries } -> Printf.sprintf "ret:cache(%d)" entries
    | Shadow_stack { depth } -> Printf.sprintf "ret:shadow(%d)" depth
    | Fast_return -> "ret:fast"
  in
  let pred = if t.pred_depth > 0 then Printf.sprintf "+pred%d" t.pred_depth else "" in
  let link = if t.link_direct then "" else "+nolink" in
  let trace = if t.follow_direct_jumps then "+traces" else "" in
  let instr = if t.count_memops then "+count-memops" else "" in
  let shep = if t.shepherd then "+shepherd" else "" in
  mech ^ "+" ^ ret ^ pred ^ link ^ trace ^ instr ^ shep
