(** Baseline indirect-branch handling: translator dispatch.

    Every indirect branch transfers to a shared routine that performs a
    full context switch into the translator, which looks up (or
    translates) the target and resumes through a full restore. This is
    the mechanism whose overhead the paper sets out to eliminate. *)

val emit_routine : Env.t -> int
(** Emit the shared dispatch routine once; returns its entry address.
    Call with the application target in [$k0]; the routine ends with
    [jr $k1]. *)

val emit_site : Env.t -> tail:Env.tail -> routine:int -> unit
(** Emit the per-site code (a jump to the routine). *)
