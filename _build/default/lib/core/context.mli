(** Full context switches.

    The baseline dispatch mechanism (and the IBTC full-miss policy)
    saves the complete application register file to the context area,
    traps into the translator runtime, restores the register file, and
    jumps to the fragment address the runtime left in the result slot.
    All of it is emitted code: the ~60 memory operations hit the
    simulated data cache, which is precisely the overhead source the
    paper attributes to context switches. *)

val emit_save : Env.t -> unit
(** Save [r1]..[r31] to the context area ([$k1] is clobbered as the
    base pointer; its stale slot value is irrelevant as a reserved
    register). *)

val emit_restore_and_jump : Env.t -> tail:Env.tail -> unit
(** Restore [r1]..[r31] except [$k1], load the fragment target from the
    result slot into [$k1], and transfer. *)

val emit_restore_no_jump : Env.t -> unit
(** Restore and load the result into [$k1], but fall through instead of
    transferring (used when the transfer instruction is shared with the
    hit path of an inline probe). *)

val max_save_restore_cost_insts : int
(** Static instruction count of one full save+restore pair on a
    flat-register-file architecture (for documentation and tests);
    register-windowed architectures emit fewer
    ({!Sdt_march.Arch.t.context_regs}). *)
