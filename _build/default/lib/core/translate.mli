(** Basic-block translation.

    The translator decodes application instructions straight out of
    simulated memory and emits their translation into the fragment
    cache. Non-control instructions translate to themselves (the
    application ABI guarantees they never touch the reserved registers);
    control transfers are rewritten:

    - direct branches/jumps end the block with {e exit stubs} that trap
      once, get patched ("linked") to jump fragment-to-fragment, and
      thereafter cost a single direct jump;
    - calls additionally materialise the application return address (or,
      under fast returns, perform a real [jal] so the hardware return
      stack pairs) and run the return policy's call-side setup;
    - indirect jumps, indirect calls and returns get the configured IB
      mechanism, optionally preceded by inline target prediction.

    Translation is lazy: a block's successors are translated only when
    first executed. *)

type ret_plan =
  | Plan_as_ib
  | Plan_retcache of Retcache.t
  | Plan_shadow of Shadow_stack.t
  | Plan_fast

exception Unsupported of string
(** The application used a reserved register, contained a [Trap] or
    undecodable word, or otherwise stepped outside the translatable
    subset. *)

val block : Env.t -> ret:ret_plan -> int -> int
(** [block env ~ret app_pc] returns the fragment address for [app_pc],
    translating the basic block if needed. Raises [Emitter.Code_full]
    when the code region overflows (the runtime flushes and retries);
    does not itself charge translation cycles (the runtime does, from
    the {!Stats.t.insts_translated} delta). *)
