(** The return cache.

    A direct-mapped, untagged table indexed by a hash of the application
    return address. Each translated call stores the address of its
    translated return point into the slot for its (statically known)
    return address; a translated return hashes the dynamic [$ra], loads
    the slot, and jumps — three ALU ops, one load, one jump, no tag
    compare. The translated return point begins with verification code
    that compares [$ra] against the return address it was built for and
    escapes to the IB mechanism on mismatch (hash collision or
    irregular control flow), preserving correctness. *)

type t

val create : Env.t -> entries:int -> t
(** Allocate the table, emit the default-slot routine (which forwards
    to {!Env.t.mech_routine} — the mechanism routine must already be
    wired), and point every slot at it. *)

val emit_call_site : t -> Env.t -> app_ret:int -> re:Emitter.label -> unit
(** Emit the call-side store of the (forward) return-entry label into
    the slot for [app_ret]. *)

val emit_return_entry : t -> Env.t -> app_ret:int -> re:Emitter.label -> unit
(** Place [re] and emit the verification prologue; falls through on a
    verified return (the caller emits the continuation next). *)

val emit_return_site : t -> Env.t -> unit
(** Emit the translation of [jr $ra]: hash, load, jump. *)

val on_flush : t -> Env.t -> unit
(** Re-emit the default routine and reset every slot to it (cached
    return entries died with the code region). *)
