(** Inline target prediction (inline caching for indirect branches).

    Ahead of the configured mechanism, an IB site compares the target in
    [$k0] against up to [depth] application addresses burned into the
    code as immediates, each guarding a direct jump to the corresponding
    fragment. Slots are filled lazily: until all are taken, the
    fall-through is a trap whose handler patches the next free slot with
    the observed target; once full, the trap word is replaced by a NOP
    and unmatched targets fall through to the mechanism.

    Monomorphic branches are a compare and a direct jump; megamorphic
    branches pay [4 * depth] extra instructions before the real lookup —
    the tradeoff the paper's prediction experiment measures. *)

val emit_site :
  Env.t -> depth:int -> tail:Env.tail -> ?cont:Emitter.label -> unit -> unit
(** Emit the prediction slots and the lazy-fill trap; the caller emits
    the mechanism body immediately after. With [Tail_jr], a slot hit is
    a direct [j fragment]. With [Tail_jalr_ra] (fast-return indirect
    calls), a slot hit is a direct [jal fragment] followed by a jump to
    [cont] — the call site's continuation label, which the caller must
    place on its continuation stub. @raise Invalid_argument if
    [Tail_jalr_ra] is requested without [cont]. *)
