module Word = Sdt_isa.Word

let sys_print_int = 1
let sys_print_char = 2
let sys_print_str = 3
let sys_checksum = 4
let sys_exit = 5

type env = {
  num : int;
  arg0 : int;
  put : string -> unit;
  mix : int -> unit;
  read_str : int -> string;
  exit : int -> unit;
}

exception Unknown of int

let mix_checksum acc v = Word.mul (Word.logxor acc (Word.of_int v)) 0x0100_0193

let perform env =
  if env.num = sys_print_int then
    env.put (string_of_int (Word.to_signed (Word.of_int env.arg0)))
  else if env.num = sys_print_char then
    env.put (String.make 1 (Char.chr (env.arg0 land 0xFF)))
  else if env.num = sys_print_str then env.put (env.read_str env.arg0)
  else if env.num = sys_checksum then env.mix env.arg0
  else if env.num = sys_exit then env.exit env.arg0
  else raise (Unknown env.num)
