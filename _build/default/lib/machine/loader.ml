module Program = Sdt_isa.Program
module Reg = Sdt_isa.Reg
module Timing = Sdt_march.Timing

let default_mem_size = 0x00A0_0000
let default_stack_top = 0x0030_0000

let load ?(mem_size = default_mem_size) ?(stack_top = default_stack_top)
    ?timing (p : Program.t) =
  let m = Machine.create ?timing ~mem_size () in
  List.iter
    (fun { Program.base; data } -> Memory.write_bytes m.Machine.mem base data)
    p.Program.segments;
  Machine.set_reg m Reg.sp stack_top;
  m.Machine.pc <- p.Program.entry;
  m
