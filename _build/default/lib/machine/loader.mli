(** Program loading and the standard memory map.

    {v
      0x0000_1000  application text
      0x0010_0000  application data
      0x0030_0000  initial stack pointer (grows down)
      0x0040_0000  fragment cache code region    (SDT only)
      0x0090_0000  SDT data: tables, context, shadow stack
      0x00A0_0000  top of memory
    v} *)

module Program = Sdt_isa.Program
module Timing = Sdt_march.Timing

val default_mem_size : int
(** 0x00A0_0000 (10 MiB). *)

val default_stack_top : int
(** 0x0030_0000. *)

val load :
  ?mem_size:int -> ?stack_top:int -> ?timing:Timing.t -> Program.t -> Machine.t
(** Build a machine, copy the program's segments in, point [$sp] at the
    stack top and the PC at the entry. *)
