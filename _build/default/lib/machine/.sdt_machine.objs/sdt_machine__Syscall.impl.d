lib/machine/syscall.ml: Char Sdt_isa String
