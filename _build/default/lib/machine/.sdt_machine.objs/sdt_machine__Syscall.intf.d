lib/machine/syscall.mli:
