lib/machine/machine.ml: Array Buffer Memory Printf Sdt_isa Sdt_march Syscall
