lib/machine/memory.mli: Sdt_isa
