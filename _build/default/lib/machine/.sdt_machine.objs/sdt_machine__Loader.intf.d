lib/machine/loader.mli: Machine Sdt_isa Sdt_march
