lib/machine/memory.ml: Array Buffer Bytes Char Sdt_isa
