lib/machine/machine.mli: Buffer Memory Sdt_isa Sdt_march
