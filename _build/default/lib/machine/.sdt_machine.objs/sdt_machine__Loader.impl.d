lib/machine/loader.ml: List Machine Memory Sdt_isa Sdt_march
