(** VIA system calls.

    The syscall number is taken from [$v0], the argument from [$a0].
    Calls are deliberately side-channel-free (no clocks, no input): a
    program's output and final checksum depend only on its code and
    data, so a run under the dynamic translator must reproduce the
    native run bit-for-bit — the correctness oracle of this repo. *)

(** The call numbers: 1 prints [$a0] in decimal, 2 prints it as a
    character, 3 prints the NUL-terminated string it points to, 4 mixes
    it into the running checksum, 5 terminates with it as exit code. *)

val sys_print_int : int
val sys_print_char : int
val sys_print_str : int
val sys_checksum : int
val sys_exit : int

type env = {
  num : int;
  arg0 : int;
  put : string -> unit;
  mix : int -> unit;
  read_str : int -> string;
  exit : int -> unit;
}
(** What a syscall may observe and do, supplied by the machine. *)

exception Unknown of int

val perform : env -> unit
(** Execute the call described by [env]. @raise Unknown on a bad
    number. *)

val mix_checksum : int -> int -> int
(** [mix_checksum acc v]: the FNV-style word mix used for syscall 4;
    exposed so hosts and tests agree on the function. *)
