module Word = Sdt_isa.Word
module Reg = Sdt_isa.Reg
module Inst = Sdt_isa.Inst
module Timing = Sdt_march.Timing

exception Error of string

type counters = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable cond_branches : int;
  mutable jumps : int;
  mutable calls : int;
  mutable icalls : int;
  mutable ijumps : int;
  mutable returns : int;
  mutable syscalls : int;
  mutable traps : int;
}

type status = Running | Exited of int

type t = {
  mem : Memory.t;
  regs : int array;
  mutable pc : int;
  timing : Timing.t option;
  mutable status : status;
  out : Buffer.t;
  mutable checksum : int;
  c : counters;
  mutable trap_handler : t -> code:int -> trap_pc:int -> unit;
}

let no_handler _ ~code ~trap_pc =
  raise
    (Error
       (Printf.sprintf "trap %d at %#x with no handler installed" code trap_pc))

let create ?timing ~mem_size () =
  {
    mem = Memory.create ~size_bytes:mem_size;
    regs = Array.make 32 0;
    pc = 0;
    timing;
    status = Running;
    out = Buffer.create 256;
    checksum = 0;
    c =
      {
        instructions = 0;
        loads = 0;
        stores = 0;
        cond_branches = 0;
        jumps = 0;
        calls = 0;
        icalls = 0;
        ijumps = 0;
        returns = 0;
        syscalls = 0;
        traps = 0;
      };
    trap_handler = no_handler;
  }

let set_trap_handler t h = t.trap_handler <- h
let reg t r = if r = 0 then 0 else t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- v land Word.mask

(* A sentinel PC installed before calling the trap handler; if the
   handler forgets to set a continuation the next fetch faults loudly
   instead of re-executing the trap. *)
let poison_pc = -4

let do_syscall t =
  t.c.syscalls <- t.c.syscalls + 1;
  let env =
    {
      Syscall.num = reg t Reg.v0;
      arg0 = reg t Reg.a0;
      put = Buffer.add_string t.out;
      mix = (fun v -> t.checksum <- Syscall.mix_checksum t.checksum v);
      read_str = Memory.read_string t.mem;
      exit = (fun code -> t.status <- Exited (code land 0xFF));
    }
  in
  Syscall.perform env

let step t =
  match t.status with
  | Exited _ -> ()
  | Running ->
      let pc = t.pc in
      let i = Memory.fetch t.mem pc in
      let c = t.c in
      c.instructions <- c.instructions + 1;
      let next = pc + 4 in
      let rget r = if r = 0 then 0 else Array.unsafe_get t.regs r in
      let rset r v = if r <> 0 then Array.unsafe_set t.regs r (v land Word.mask) in
      let ev : Timing.event =
        match i with
        | Inst.Nop ->
            t.pc <- next;
            Timing.Alu
        | Inst.Add (rd, rs, rt) ->
            rset rd (Word.add (rget rs) (rget rt));
            t.pc <- next;
            Timing.Alu
        | Inst.Sub (rd, rs, rt) ->
            rset rd (Word.sub (rget rs) (rget rt));
            t.pc <- next;
            Timing.Alu
        | Inst.Mul (rd, rs, rt) ->
            rset rd (Word.mul (rget rs) (rget rt));
            t.pc <- next;
            Timing.Mul_op
        | Inst.Div (rd, rs, rt) ->
            rset rd (Word.sdiv (rget rs) (rget rt));
            t.pc <- next;
            Timing.Div_op
        | Inst.Rem (rd, rs, rt) ->
            rset rd (Word.srem (rget rs) (rget rt));
            t.pc <- next;
            Timing.Div_op
        | Inst.And (rd, rs, rt) ->
            rset rd (Word.logand (rget rs) (rget rt));
            t.pc <- next;
            Timing.Alu
        | Inst.Or (rd, rs, rt) ->
            rset rd (Word.logor (rget rs) (rget rt));
            t.pc <- next;
            Timing.Alu
        | Inst.Xor (rd, rs, rt) ->
            rset rd (Word.logxor (rget rs) (rget rt));
            t.pc <- next;
            Timing.Alu
        | Inst.Nor (rd, rs, rt) ->
            rset rd (Word.lognot (Word.logor (rget rs) (rget rt)));
            t.pc <- next;
            Timing.Alu
        | Inst.Slt (rd, rs, rt) ->
            rset rd (if Word.lt_s (rget rs) (rget rt) then 1 else 0);
            t.pc <- next;
            Timing.Alu
        | Inst.Sltu (rd, rs, rt) ->
            rset rd (if Word.lt_u (rget rs) (rget rt) then 1 else 0);
            t.pc <- next;
            Timing.Alu
        | Inst.Sllv (rd, rt, rs) ->
            rset rd (Word.shl (rget rt) (rget rs));
            t.pc <- next;
            Timing.Alu
        | Inst.Srlv (rd, rt, rs) ->
            rset rd (Word.shr_l (rget rt) (rget rs));
            t.pc <- next;
            Timing.Alu
        | Inst.Srav (rd, rt, rs) ->
            rset rd (Word.shr_a (rget rt) (rget rs));
            t.pc <- next;
            Timing.Alu
        | Inst.Sll (rd, rt, sh) ->
            rset rd (Word.shl (rget rt) sh);
            t.pc <- next;
            Timing.Alu
        | Inst.Srl (rd, rt, sh) ->
            rset rd (Word.shr_l (rget rt) sh);
            t.pc <- next;
            Timing.Alu
        | Inst.Sra (rd, rt, sh) ->
            rset rd (Word.shr_a (rget rt) sh);
            t.pc <- next;
            Timing.Alu
        | Inst.Addi (rt, rs, imm) ->
            rset rt (Word.add (rget rs) (Word.of_signed imm));
            t.pc <- next;
            Timing.Alu
        | Inst.Slti (rt, rs, imm) ->
            rset rt (if Word.lt_s (rget rs) (Word.of_signed imm) then 1 else 0);
            t.pc <- next;
            Timing.Alu
        | Inst.Sltiu (rt, rs, imm) ->
            rset rt (if Word.lt_u (rget rs) (Word.of_signed imm) then 1 else 0);
            t.pc <- next;
            Timing.Alu
        | Inst.Andi (rt, rs, imm) ->
            rset rt (Word.logand (rget rs) imm);
            t.pc <- next;
            Timing.Alu
        | Inst.Ori (rt, rs, imm) ->
            rset rt (Word.logor (rget rs) imm);
            t.pc <- next;
            Timing.Alu
        | Inst.Xori (rt, rs, imm) ->
            rset rt (Word.logxor (rget rs) imm);
            t.pc <- next;
            Timing.Alu
        | Inst.Lui (rt, imm) ->
            rset rt (imm lsl 16);
            t.pc <- next;
            Timing.Alu
        | Inst.Lw (rt, rs, off) ->
            let addr = Word.add (rget rs) (Word.of_signed off) in
            rset rt (Memory.load_word t.mem addr);
            c.loads <- c.loads + 1;
            t.pc <- next;
            Timing.Load addr
        | Inst.Lb (rt, rs, off) ->
            let addr = Word.add (rget rs) (Word.of_signed off) in
            rset rt (Memory.load_byte_s t.mem addr);
            c.loads <- c.loads + 1;
            t.pc <- next;
            Timing.Load addr
        | Inst.Lbu (rt, rs, off) ->
            let addr = Word.add (rget rs) (Word.of_signed off) in
            rset rt (Memory.load_byte_u t.mem addr);
            c.loads <- c.loads + 1;
            t.pc <- next;
            Timing.Load addr
        | Inst.Sw (rt, rs, off) ->
            let addr = Word.add (rget rs) (Word.of_signed off) in
            Memory.store_word t.mem addr (rget rt);
            c.stores <- c.stores + 1;
            t.pc <- next;
            Timing.Store addr
        | Inst.Sb (rt, rs, off) ->
            let addr = Word.add (rget rs) (Word.of_signed off) in
            Memory.store_byte t.mem addr (rget rt);
            c.stores <- c.stores + 1;
            t.pc <- next;
            Timing.Store addr
        | Inst.Beq (rs, rt, off) ->
            let taken = rget rs = rget rt in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.Bne (rs, rt, off) ->
            let taken = rget rs <> rget rt in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.Blt (rs, rt, off) ->
            let taken = Word.lt_s (rget rs) (rget rt) in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.Bge (rs, rt, off) ->
            let taken = not (Word.lt_s (rget rs) (rget rt)) in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.Bltu (rs, rt, off) ->
            let taken = Word.lt_u (rget rs) (rget rt) in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.Bgeu (rs, rt, off) ->
            let taken = not (Word.lt_u (rget rs) (rget rt)) in
            c.cond_branches <- c.cond_branches + 1;
            t.pc <- (if taken then next + (off * 4) else next);
            Timing.Cond { pc; taken }
        | Inst.J target ->
            c.jumps <- c.jumps + 1;
            t.pc <- (next land 0xF000_0000) lor (target lsl 2);
            Timing.Jump
        | Inst.Jal target ->
            c.calls <- c.calls + 1;
            rset Reg.ra next;
            t.pc <- (next land 0xF000_0000) lor (target lsl 2);
            Timing.Call { next }
        | Inst.Jr rs ->
            let target = rget rs in
            t.pc <- target;
            if rs = Reg.ra then begin
              c.returns <- c.returns + 1;
              Timing.Return { pc; target }
            end
            else begin
              c.ijumps <- c.ijumps + 1;
              Timing.Ijump { pc; target }
            end
        | Inst.Jalr (rd, rs) ->
            let target = rget rs in
            c.icalls <- c.icalls + 1;
            rset rd next;
            t.pc <- target;
            Timing.Icall { pc; target; next }
        | Inst.Syscall ->
            do_syscall t;
            t.pc <- next;
            Timing.Syscall_op
        | Inst.Trap code ->
            c.traps <- c.traps + 1;
            t.pc <- poison_pc;
            t.trap_handler t ~code ~trap_pc:pc;
            Timing.Trap_op
        | Inst.Halt ->
            t.status <- Exited 0;
            Timing.Halt_op
        | Inst.Illegal w ->
            raise
              (Error (Printf.sprintf "illegal instruction %#x at %#x" w pc))
      in
      (match t.timing with
      | None -> ()
      | Some tm -> Timing.instr tm ~pc ev)

let run ?(max_steps = 1_000_000_000) t =
  let steps = ref 0 in
  while t.status == Running && !steps < max_steps do
    step t;
    incr steps
  done;
  match t.status with
  | Running ->
      raise (Error (Printf.sprintf "step limit (%d) exceeded at pc=%#x" max_steps t.pc))
  | Exited _ -> ()

let output t = Buffer.contents t.out
let exit_code t = match t.status with Running -> None | Exited c -> Some c
let ib_dynamic_count t = t.c.icalls + t.c.ijumps + t.c.returns
