type t = int

let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let k0 = 26
let k1 = 27
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let is_valid r = r >= 0 && r < 32
let reserved = [ at; k0; k1 ]
let is_reserved r = r = at || r = k0 || r = k1

let names =
  [| "$zero"; "$at"; "$v0"; "$v1"; "$a0"; "$a1"; "$a2"; "$a3";
     "$t0"; "$t1"; "$t2"; "$t3"; "$t4"; "$t5"; "$t6"; "$t7";
     "$s0"; "$s1"; "$s2"; "$s3"; "$s4"; "$s5"; "$s6"; "$s7";
     "$t8"; "$t9"; "$k0"; "$k1"; "$gp"; "$sp"; "$fp"; "$ra" |]

let name r =
  if is_valid r then names.(r) else Printf.sprintf "$bad%d" r

let of_name s =
  let s = if String.length s > 0 && s.[0] = '$' then String.sub s 1 (String.length s - 1) else s in
  let by_name =
    let found = ref None in
    Array.iteri
      (fun i n ->
        if String.sub n 1 (String.length n - 1) = s then found := Some i)
      names;
    !found
  in
  match by_name with
  | Some _ as r -> r
  | None -> (
      match int_of_string_opt s with
      | Some r when is_valid r -> Some r
      | Some _ | None -> None)

let pp ppf r = Format.pp_print_string ppf (name r)
