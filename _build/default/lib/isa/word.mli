(** 32-bit machine words.

    The VIA architecture is a 32-bit machine; registers and memory words
    are values of this type. Words are represented as OCaml [int]s kept in
    the canonical range [0, 2{^32}), so they are cheap to box-free pass
    around on a 64-bit host. All arithmetic wraps modulo 2{^32}. *)

type t = int
(** A word. Invariant: [0 <= w < 0x1_0000_0000]. *)

val mask : int
(** [mask = 0xFFFF_FFFF]. *)

val of_int : int -> t
(** [of_int n] truncates [n] to its low 32 bits. *)

val to_signed : t -> int
(** [to_signed w] reinterprets [w] as a two's-complement signed 32-bit
    value, in the range [-2{^31}, 2{^31}). *)

val of_signed : int -> t
(** [of_signed n] is [of_int n]; named for call-site clarity when the
    argument is a signed quantity such as a branch displacement. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val sdiv : t -> t -> t
(** Signed division, truncating toward zero. Division by zero yields 0
    (VIA divide is trap-free). [min_int / -1] wraps to [min_int]. *)

val srem : t -> t -> t
(** Signed remainder paired with {!sdiv}. Remainder by zero yields the
    dividend. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shl : t -> int -> t
(** [shl w n] shifts left by [n land 31]. *)

val shr_l : t -> int -> t
(** Logical right shift by [n land 31]. *)

val shr_a : t -> int -> t
(** Arithmetic right shift by [n land 31] (sign-extending). *)

val lt_s : t -> t -> bool
(** Signed comparison. *)

val lt_u : t -> t -> bool
(** Unsigned comparison. *)

val hi16 : t -> int
(** Upper 16 bits, in [0, 0xFFFF]. *)

val lo16 : t -> int
(** Lower 16 bits, in [0, 0xFFFF]. *)

val sext16 : int -> t
(** Sign-extend a 16-bit immediate to a word. *)

val sext8 : int -> t
(** Sign-extend an 8-bit value to a word. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, [0x%08x]. *)

val to_hex : t -> string
