let signed16 imm = Word.to_signed (Word.sext16 imm)

let decode_rtype w =
  let rs = (w lsr 21) land 0x1F in
  let rt = (w lsr 16) land 0x1F in
  let rd = (w lsr 11) land 0x1F in
  let shamt = (w lsr 6) land 0x1F in
  let funct = w land 0x3F in
  let open Inst in
  (* Fields that must be zero for a given funct are checked so that only
     canonical encodings decode; everything else is Illegal. *)
  let z cond i = if cond then i else Illegal w in
  if funct = Opcodes.f_sll then z (rs = 0) (Sll (rd, rt, shamt))
  else if funct = Opcodes.f_srl then z (rs = 0) (Srl (rd, rt, shamt))
  else if funct = Opcodes.f_sra then z (rs = 0) (Sra (rd, rt, shamt))
  else if funct = Opcodes.f_sllv then z (shamt = 0) (Sllv (rd, rt, rs))
  else if funct = Opcodes.f_srlv then z (shamt = 0) (Srlv (rd, rt, rs))
  else if funct = Opcodes.f_srav then z (shamt = 0) (Srav (rd, rt, rs))
  else if funct = Opcodes.f_jr then z (rt = 0 && rd = 0 && shamt = 0) (Jr rs)
  else if funct = Opcodes.f_jalr then z (rt = 0 && shamt = 0) (Jalr (rd, rs))
  else if funct = Opcodes.f_syscall then
    z (rs = 0 && rt = 0 && rd = 0 && shamt = 0) Syscall
  else if shamt <> 0 then Illegal w
  else if funct = Opcodes.f_mul then Mul (rd, rs, rt)
  else if funct = Opcodes.f_div then Div (rd, rs, rt)
  else if funct = Opcodes.f_rem then Rem (rd, rs, rt)
  else if funct = Opcodes.f_add then Add (rd, rs, rt)
  else if funct = Opcodes.f_sub then Sub (rd, rs, rt)
  else if funct = Opcodes.f_and then And (rd, rs, rt)
  else if funct = Opcodes.f_or then Or (rd, rs, rt)
  else if funct = Opcodes.f_xor then Xor (rd, rs, rt)
  else if funct = Opcodes.f_nor then Nor (rd, rs, rt)
  else if funct = Opcodes.f_slt then Slt (rd, rs, rt)
  else if funct = Opcodes.f_sltu then Sltu (rd, rs, rt)
  else Illegal w

let inst (w : Word.t) : Inst.t =
  if w = 0 then Inst.Nop
  else
    let op = (w lsr 26) land 0x3F in
    if op = Opcodes.op_rtype then decode_rtype w
    else
      let rs = (w lsr 21) land 0x1F in
      let rt = (w lsr 16) land 0x1F in
      let imm = w land 0xFFFF in
      let target = w land 0x3FF_FFFF in
      let open Inst in
      if op = Opcodes.op_j then J target
      else if op = Opcodes.op_jal then Jal target
      else if op = Opcodes.op_beq then Beq (rs, rt, signed16 imm)
      else if op = Opcodes.op_bne then Bne (rs, rt, signed16 imm)
      else if op = Opcodes.op_blt then Blt (rs, rt, signed16 imm)
      else if op = Opcodes.op_bge then Bge (rs, rt, signed16 imm)
      else if op = Opcodes.op_bltu then Bltu (rs, rt, signed16 imm)
      else if op = Opcodes.op_bgeu then Bgeu (rs, rt, signed16 imm)
      else if op = Opcodes.op_addi then Addi (rt, rs, signed16 imm)
      else if op = Opcodes.op_slti then Slti (rt, rs, signed16 imm)
      else if op = Opcodes.op_sltiu then Sltiu (rt, rs, signed16 imm)
      else if op = Opcodes.op_andi then Andi (rt, rs, imm)
      else if op = Opcodes.op_ori then Ori (rt, rs, imm)
      else if op = Opcodes.op_xori then Xori (rt, rs, imm)
      else if op = Opcodes.op_lui then if rs = 0 then Lui (rt, imm) else Illegal w
      else if op = Opcodes.op_lw then Lw (rt, rs, signed16 imm)
      else if op = Opcodes.op_lb then Lb (rt, rs, signed16 imm)
      else if op = Opcodes.op_lbu then Lbu (rt, rs, signed16 imm)
      else if op = Opcodes.op_sw then Sw (rt, rs, signed16 imm)
      else if op = Opcodes.op_sb then Sb (rt, rs, signed16 imm)
      else if op = Opcodes.op_trap then
        if target <= 0xFFFF then Trap target else Illegal w
      else if op = Opcodes.op_halt then if target = 0 then Halt else Illegal w
      else Illegal w
