let inst ~pc (i : Inst.t) =
  let abs_branch off = pc + 4 + (off * 4) in
  match i with
  | Beq (rs, rt, off) ->
      Printf.sprintf "beq %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | Bne (rs, rt, off) ->
      Printf.sprintf "bne %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | Blt (rs, rt, off) ->
      Printf.sprintf "blt %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | Bge (rs, rt, off) ->
      Printf.sprintf "bge %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | Bltu (rs, rt, off) ->
      Printf.sprintf "bltu %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | Bgeu (rs, rt, off) ->
      Printf.sprintf "bgeu %s, %s, 0x%x" (Reg.name rs) (Reg.name rt)
        (abs_branch off)
  | J t -> Printf.sprintf "j 0x%x" (((pc + 4) land 0xF000_0000) lor (t lsl 2))
  | Jal t -> Printf.sprintf "jal 0x%x" (((pc + 4) land 0xF000_0000) lor (t lsl 2))
  | Nop | Add _ | Sub _ | Mul _ | Div _ | Rem _ | And _ | Or _ | Xor _
  | Nor _ | Slt _ | Sltu _ | Sllv _ | Srlv _ | Srav _ | Sll _ | Srl _
  | Sra _ | Addi _ | Slti _ | Sltiu _ | Andi _ | Ori _ | Xori _ | Lui _
  | Lw _ | Lb _ | Lbu _ | Sw _ | Sb _ | Jr _ | Jalr _ | Syscall | Trap _
  | Halt | Illegal _ ->
      Inst.to_string i

let word ~pc w = inst ~pc (Decode.inst w)

let listing ?symbols (p : Program.t) =
  let symbols = match symbols with Some s -> s | None -> p.Program.symbols in
  let by_addr = Hashtbl.create 16 in
  List.iter (fun (n, a) -> Hashtbl.replace by_addr a n) symbols;
  let buf = Buffer.create 1024 in
  List.iter
    (fun (addr, w) ->
      (match Hashtbl.find_opt by_addr addr with
      | Some n -> Buffer.add_string buf (Printf.sprintf "%s:\n" n)
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "  %08x: %08x  %s\n" addr w (word ~pc:addr w)))
    (Program.text_words p);
  Buffer.contents buf
