exception Error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type section = Text | Data

type state = {
  b : Builder.t;
  labels : (string, Builder.label) Hashtbl.t;
  mutable section : section;
  mutable globls : string list;
}

let label_of st name =
  match Hashtbl.find_opt st.labels name with
  | Some l -> l
  | None ->
      let l = Builder.fresh_label ~name st.b in
      Hashtbl.replace st.labels name l;
      l

let reg line = function
  | Parser.Reg r -> r
  | Parser.Imm _ | Parser.Sym _ | Parser.Mem _ -> fail line "expected a register"

let imm line = function
  | Parser.Imm v -> v
  | Parser.Reg _ | Parser.Sym _ | Parser.Mem _ -> fail line "expected an immediate"

let sym line = function
  | Parser.Sym s -> s
  | Parser.Reg _ | Parser.Imm _ | Parser.Mem _ -> fail line "expected a label"

let mem line = function
  | Parser.Mem (off, base) -> (off, base)
  | Parser.Sym _ | Parser.Reg _ | Parser.Imm _ -> fail line "expected off(base)"

let instr st line mnemonic ops =
  let b = st.b in
  let r = reg line and i = imm line and s = sym line and m = mem line in
  let lbl o = label_of st (s o) in
  let emit inst =
    try Builder.emit b inst
    with Builder.Error msg -> fail line "%s" msg
  in
  let rrr mk = function
    | [ a; b'; c ] -> emit (mk (r a) (r b') (r c))
    | _ -> fail line "%s expects rd, rs, rt" mnemonic
  in
  let rri mk = function
    | [ a; b'; c ] -> emit (mk (r a) (r b') (i c))
    | _ -> fail line "%s expects rt, rs, imm" mnemonic
  in
  let load mk = function
    | [ a; b' ] ->
        let off, base = m b' in
        emit (mk (r a) base off)
    | _ -> fail line "%s expects rt, off(base)" mnemonic
  in
  let branch bmk = function
    | [ a; b'; c ] -> bmk b (r a) (r b') (lbl c)
    | _ -> fail line "%s expects rs, rt, label" mnemonic
  in
  match (mnemonic, ops) with
  | "add", _ -> rrr (fun a b c -> Inst.Add (a, b, c)) ops
  | "sub", _ -> rrr (fun a b c -> Inst.Sub (a, b, c)) ops
  | "mul", _ -> rrr (fun a b c -> Inst.Mul (a, b, c)) ops
  | "div", _ -> rrr (fun a b c -> Inst.Div (a, b, c)) ops
  | "rem", _ -> rrr (fun a b c -> Inst.Rem (a, b, c)) ops
  | "and", _ -> rrr (fun a b c -> Inst.And (a, b, c)) ops
  | "or", _ -> rrr (fun a b c -> Inst.Or (a, b, c)) ops
  | "xor", _ -> rrr (fun a b c -> Inst.Xor (a, b, c)) ops
  | "nor", _ -> rrr (fun a b c -> Inst.Nor (a, b, c)) ops
  | "slt", _ -> rrr (fun a b c -> Inst.Slt (a, b, c)) ops
  | "sltu", _ -> rrr (fun a b c -> Inst.Sltu (a, b, c)) ops
  | "sllv", _ -> rrr (fun a b c -> Inst.Sllv (a, b, c)) ops
  | "srlv", _ -> rrr (fun a b c -> Inst.Srlv (a, b, c)) ops
  | "srav", _ -> rrr (fun a b c -> Inst.Srav (a, b, c)) ops
  | "sll", _ -> rri (fun a b c -> Inst.Sll (a, b, c)) ops
  | "srl", _ -> rri (fun a b c -> Inst.Srl (a, b, c)) ops
  | "sra", _ -> rri (fun a b c -> Inst.Sra (a, b, c)) ops
  | "addi", _ -> rri (fun a b c -> Inst.Addi (a, b, c)) ops
  | "slti", _ -> rri (fun a b c -> Inst.Slti (a, b, c)) ops
  | "sltiu", _ -> rri (fun a b c -> Inst.Sltiu (a, b, c)) ops
  | "andi", _ -> rri (fun a b c -> Inst.Andi (a, b, c)) ops
  | "ori", _ -> rri (fun a b c -> Inst.Ori (a, b, c)) ops
  | "xori", _ -> rri (fun a b c -> Inst.Xori (a, b, c)) ops
  | "lui", [ a; b' ] -> emit (Inst.Lui (r a, i b'))
  | "lw", _ -> load (fun a b c -> Inst.Lw (a, b, c)) ops
  | "lb", _ -> load (fun a b c -> Inst.Lb (a, b, c)) ops
  | "lbu", _ -> load (fun a b c -> Inst.Lbu (a, b, c)) ops
  | "sw", _ -> load (fun a b c -> Inst.Sw (a, b, c)) ops
  | "sb", _ -> load (fun a b c -> Inst.Sb (a, b, c)) ops
  | "beq", _ -> branch Builder.beq ops
  | "bne", _ -> branch Builder.bne ops
  | "blt", _ -> branch Builder.blt ops
  | "bge", _ -> branch Builder.bge ops
  | "bltu", _ -> branch Builder.bltu ops
  | "bgeu", _ -> branch Builder.bgeu ops
  | "beqz", [ a; c ] -> Builder.beq b (r a) Reg.zero (lbl c)
  | "bnez", [ a; c ] -> Builder.bne b (r a) Reg.zero (lbl c)
  | "j", [ c ] -> Builder.j b (lbl c)
  | "b", [ c ] -> Builder.j b (lbl c)
  | "jal", [ c ] | "call", [ c ] -> Builder.jal b (lbl c)
  | "jr", [ a ] -> Builder.jr b (r a)
  | "jalr", [ a ] -> emit (Inst.Jalr (Reg.ra, r a))
  | "jalr", [ d; a ] -> emit (Inst.Jalr (r d, r a))
  | "ret", [] -> Builder.ret b
  | "li", [ a; v ] -> Builder.li b (r a) (i v)
  | "la", [ a; c ] -> (
      try Builder.la b (r a) (lbl c) with Builder.Error msg -> fail line "%s" msg)
  | ("move" | "mv"), [ a; b' ] -> Builder.mv b (r a) (r b')
  | "not", [ a; b' ] -> emit (Inst.Nor (r a, r b', Reg.zero))
  | "neg", [ a; b' ] -> emit (Inst.Sub (r a, Reg.zero, r b'))
  | "push", [ a ] -> Builder.push b (r a)
  | "pop", [ a ] -> Builder.pop b (r a)
  | "nop", [] -> Builder.nop b
  | "halt", [] -> Builder.halt b
  | "syscall", [] -> Builder.syscall b
  | "trap", [ v ] -> emit (Inst.Trap (i v))
  | _, _ -> fail line "unknown instruction or bad operands: %s" mnemonic

let stmt st line = function
  | Parser.Label name -> (
      let l = label_of st name in
      try
        match st.section with
        | Text -> Builder.place st.b l
        | Data -> Builder.place_data st.b l
      with Builder.Error msg -> fail line "%s" msg)
  | Parser.Instr (mnemonic, ops) ->
      if st.section = Data then fail line "instruction in .data section";
      instr st line mnemonic ops
  | Parser.Dir_text -> st.section <- Text
  | Parser.Dir_data -> st.section <- Data
  | Parser.Dir_word vs -> Builder.words st.b vs
  | Parser.Dir_byte vs -> List.iter (Builder.byte st.b) vs
  | Parser.Dir_asciiz s -> Builder.asciiz st.b s
  | Parser.Dir_space n -> Builder.space st.b n
  | Parser.Dir_align n -> Builder.align st.b n
  | Parser.Dir_globl s -> st.globls <- s :: st.globls

let assemble_string ?text_base ?data_base src =
  let b = Builder.create ?text_base ?data_base () in
  let st = { b; labels = Hashtbl.create 64; section = Text; globls = [] } in
  let start = Builder.here ~name:"__start" b in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun idx src_line ->
      let line = idx + 1 in
      let stmts =
        try Parser.parse_line ~line src_line with
        | Lexer.Error { line; msg } | Parser.Error { line; msg } ->
            raise (Error { line; msg })
      in
      List.iter (stmt st line) stmts)
    lines;
  let entry =
    match Hashtbl.find_opt st.labels "main" with Some l -> l | None -> start
  in
  try Builder.assemble b ~entry
  with Builder.Error msg -> raise (Error { line = 0; msg })

let assemble_file ?text_base ?data_base path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      assemble_string ?text_base ?data_base src)
