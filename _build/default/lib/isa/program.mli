(** Linked program images.

    A program is a set of memory segments (text, data) plus an entry
    point and a symbol table. Images are what the {!Assembler} and
    {!Builder} produce and what the machine loader consumes. *)

type segment = {
  base : int;  (** load address, word-aligned for text *)
  data : bytes;
}

type t = {
  entry : int;  (** address of the first instruction to execute *)
  segments : segment list;
  symbols : (string * int) list;  (** name -> address, for diagnostics *)
}

val default_text_base : int
(** 0x0000_1000: where application text conventionally loads. *)

val default_data_base : int
(** 0x0010_0000: where application data conventionally loads. *)

val text_words : t -> (int * Word.t) list
(** All word-aligned (address, word) pairs of every segment, in address
    order — used by the disassembler. *)

val symbol : t -> string -> int option
(** Look up a symbol address. *)

val size_bytes : t -> int
(** Total bytes across segments. *)
