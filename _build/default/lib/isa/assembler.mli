(** Two-pass textual assembler for [.via] source files.

    Drives {!Builder} from parsed statements. The entry point is the
    [main] symbol if defined, otherwise the first text address.

    Supported pseudo-instructions beyond the base ISA: [li], [la],
    [move]/[mv], [not], [neg], [b], [beqz], [bnez], [call], [ret],
    [push], [pop]. *)

exception Error of { line : int; msg : string }

val assemble_string : ?text_base:int -> ?data_base:int -> string -> Program.t
(** Assemble a whole source text. @raise Error with a 1-based source
    line on any lexical, syntactic or semantic problem. *)

val assemble_file : ?text_base:int -> ?data_base:int -> string -> Program.t
(** Read and assemble a file. *)
