(** Binary decoding of VIA instructions.

    Total: every 32-bit word decodes, possibly to [Inst.Illegal]. The
    software dynamic translator uses this decoder to read application
    text straight out of simulated memory, and the simulated CPU uses it
    at fetch time. *)

val inst : Word.t -> Inst.t
(** [inst w] decodes [w]. The word [0] decodes to [Inst.Nop] (the
    canonical encoding of [sll $zero, $zero, 0]). Words that match no
    instruction decode to [Inst.Illegal w]. *)
