type segment = { base : int; data : bytes }
type t = { entry : int; segments : segment list; symbols : (string * int) list }

let default_text_base = 0x0000_1000
let default_data_base = 0x0010_0000

let get_word b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let text_words t =
  let seg_words { base; data } =
    let n = Bytes.length data / 4 in
    List.init n (fun i -> (base + (i * 4), get_word data (i * 4)))
  in
  t.segments
  |> List.sort (fun a b -> compare a.base b.base)
  |> List.concat_map seg_words

let symbol t name = List.assoc_opt name t.symbols
let size_bytes t = List.fold_left (fun acc s -> acc + Bytes.length s.data) 0 t.segments
