type token =
  | Ident of string
  | Directive of string
  | Register of Reg.t
  | Int of int
  | Str of string
  | Comma
  | Colon
  | Lparen
  | Rparen

exception Error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~line s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let comment_ahead () =
    match peek () with
    | Some '#' | Some ';' -> true
    | Some '/' -> !i + 1 < n && s.[!i + 1] = '/'
    | Some _ | None -> false
  in
  let read_while p =
    let start = !i in
    while !i < n && p s.[!i] do
      incr i
    done;
    String.sub s start (!i - start)
  in
  let read_escape () =
    incr i;
    if !i >= n then fail line "dangling escape";
    let c = s.[!i] in
    incr i;
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '"' -> '"'
    | '\'' -> '\''
    | c -> fail line "unknown escape '\\%c'" c
  in
  let finished = ref false in
  while not !finished do
    match peek () with
    | None -> finished := true
    | Some _ when comment_ahead () -> finished := true
    | Some (' ' | '\t' | '\r') -> incr i
    | Some ',' ->
        push Comma;
        incr i
    | Some ':' ->
        push Colon;
        incr i
    | Some '(' ->
        push Lparen;
        incr i
    | Some ')' ->
        push Rparen;
        incr i
    | Some '$' ->
        incr i;
        let name = read_while (fun c -> is_ident c) in
        (match Reg.of_name name with
        | Some r -> push (Register r)
        | None -> fail line "unknown register $%s" name)
    | Some '\'' ->
        incr i;
        let c =
          match peek () with
          | Some '\\' -> read_escape ()
          | Some c ->
              incr i;
              c
          | None -> fail line "unterminated character literal"
        in
        (match peek () with
        | Some '\'' ->
            incr i;
            push (Int (Char.code c))
        | Some _ | None -> fail line "unterminated character literal")
    | Some '"' ->
        incr i;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          match peek () with
          | None -> fail line "unterminated string"
          | Some '"' ->
              incr i;
              closed := true
          | Some '\\' -> Buffer.add_char buf (read_escape ())
          | Some c ->
              Buffer.add_char buf c;
              incr i
        done;
        push (Str (Buffer.contents buf))
    | Some '-' ->
        incr i;
        let digits = read_while (fun c -> is_digit c || c = 'x' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
        (match int_of_string_opt ("-" ^ digits) with
        | Some v -> push (Int v)
        | None -> fail line "bad number -%s" digits)
    | Some c when is_digit c ->
        let digits = read_while (fun c -> is_digit c || c = 'x' || c = 'X' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
        (match int_of_string_opt digits with
        | Some v -> push (Int v)
        | None -> fail line "bad number %s" digits)
    | Some '.' ->
        incr i;
        let name = read_while is_ident in
        push (Directive name)
    | Some c when is_ident_start c ->
        let name = read_while is_ident in
        push (Ident name)
    | Some c -> fail line "unexpected character '%c'" c
  done;
  List.rev !toks

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "ident(%s)" s
  | Directive s -> Format.fprintf ppf ".%s" s
  | Register r -> Format.fprintf ppf "%s" (Reg.name r)
  | Int v -> Format.fprintf ppf "%d" v
  | Str s -> Format.fprintf ppf "%S" s
  | Comma -> Format.fprintf ppf ","
  | Colon -> Format.fprintf ppf ":"
  | Lparen -> Format.fprintf ppf "("
  | Rparen -> Format.fprintf ppf ")"
