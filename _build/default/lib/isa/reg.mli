(** VIA register names and calling convention.

    VIA has 32 general-purpose registers. The ABI mirrors the MIPS o32
    convention, with one twist that matters to this reproduction: the
    registers [$at], [$k0] and [$k1] are reserved for the software dynamic
    translator, exactly as Strata reserves scratch registers on SPARC.
    Application code produced by the workload builders never reads or
    writes them, which lets the translator emit indirect-branch handling
    sequences without spilling (the per-architecture [spill_scratch]
    configuration re-introduces spills to model register-starved hosts
    such as x86). *)

type t = int
(** A register number in [0, 31]. *)

(** [zero] is [r0] (hardwired zero); [at], [k0], [k1] are reserved for
    the translator; [v0]/[v1] carry results and syscall numbers;
    [a0]..[a3] arguments; [t0]..[t9] caller-saved; [s0]..[s7]
    callee-saved; [gp], [sp], [fp], [ra] as in MIPS o32. *)

val zero : t
val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val t8 : t
val t9 : t
val k0 : t
val k1 : t
val gp : t
val sp : t
val fp : t
val ra : t

val is_valid : int -> bool
(** [is_valid r] is [0 <= r && r < 32]. *)

val reserved : t list
(** The translator-reserved registers: [at], [k0], [k1]. *)

val is_reserved : t -> bool

val name : t -> string
(** Canonical ABI name, e.g. [name 8 = "$t0"]. *)

val of_name : string -> t option
(** Parse either an ABI name ("$t0", "t0") or a numeric name ("$8"). *)

val pp : Format.formatter -> t -> unit
