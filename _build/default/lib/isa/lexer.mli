(** Line lexer for VIA assembly source.

    Assembly is line-oriented; the lexer turns one source line into
    tokens, stripping comments ([#], [//] and [;] to end of line). *)

type token =
  | Ident of string      (** mnemonic, label or directive name *)
  | Directive of string  (** ".word" -> [Directive "word"] *)
  | Register of Reg.t
  | Int of int           (** decimal, hex (0x..), or char ('a') literal *)
  | Str of string        (** double-quoted, with escapes *)
  | Comma
  | Colon
  | Lparen
  | Rparen

exception Error of { line : int; msg : string }

val tokenize : line:int -> string -> token list
(** Tokenize one line. @raise Error on malformed input. *)

val pp_token : Format.formatter -> token -> unit
