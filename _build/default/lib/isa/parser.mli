(** Parser for VIA assembly source lines.

    Grammar, per line (all parts optional):
    {[ [label ':']... [mnemonic operand {',' operand}] [comment] ]}
    plus directives [.text], [.data], [.word e,...], [.byte e,...],
    [.asciiz "s"], [.space n], [.align n], [.globl name] (recorded as an
    exported symbol). Operands are registers, integer literals, bare
    identifiers (label references), or [off(base)] memory forms. *)

type operand =
  | Reg of Reg.t
  | Imm of int
  | Sym of string
  | Mem of int * Reg.t  (** [off(base)] *)

type stmt =
  | Label of string
  | Instr of string * operand list
  | Dir_text
  | Dir_data
  | Dir_word of int list
  | Dir_byte of int list
  | Dir_asciiz of string
  | Dir_space of int
  | Dir_align of int
  | Dir_globl of string

exception Error of { line : int; msg : string }

val parse_line : line:int -> string -> stmt list
(** Parse one source line into zero or more statements (labels followed
    by an instruction on the same line yield several). *)
