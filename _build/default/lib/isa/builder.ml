exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type label = int

type item =
  | Raw of Inst.t
  | Branch_to of Inst.t * label  (* offset field is a placeholder *)
  | Jump_to of [ `J | `Jal ] * label
  | La_hi of Reg.t * label       (* lui part of la *)
  | La_lo of Reg.t * label       (* ori part of la *)

type t = {
  text_base : int;
  data_base : int;
  mutable items : item list;  (* reversed *)
  mutable n_items : int;
  data : Buffer.t;
  labels : (label, int) Hashtbl.t;  (* label -> absolute address *)
  mutable next_label : int;
  mutable names : (string * label) list;
}

let create ?(text_base = Program.default_text_base)
    ?(data_base = Program.default_data_base) () =
  if text_base land 3 <> 0 then error "text base %#x not word-aligned" text_base;
  {
    text_base;
    data_base;
    items = [];
    n_items = 0;
    data = Buffer.create 256;
    labels = Hashtbl.create 64;
    next_label = 0;
    names = [];
  }

let fresh_label ?name t =
  let l = t.next_label in
  t.next_label <- l + 1;
  (match name with Some n -> t.names <- (n, l) :: t.names | None -> ());
  l

let text_pos t = t.text_base + (4 * t.n_items)

let place t l =
  if Hashtbl.mem t.labels l then error "label %d placed twice" l;
  Hashtbl.replace t.labels l (text_pos t)

let place_data t l =
  if Hashtbl.mem t.labels l then error "label %d placed twice" l;
  Hashtbl.replace t.labels l (t.data_base + Buffer.length t.data)

let here ?name t =
  let l = fresh_label ?name t in
  place t l;
  l

let add_item t it =
  t.items <- it :: t.items;
  t.n_items <- t.n_items + 1

let emit t i =
  if Inst.uses_reserved i then
    error "instruction uses a translator-reserved register: %s"
      (Inst.to_string i);
  add_item t (Raw i)

(* Internal emit that may use reserved registers (the SDT layer has its
   own emitter; Builder keeps applications honest). *)

let branch t mk l = add_item t (Branch_to (mk 0, l))
let beq t rs rt l = branch t (fun o -> Inst.Beq (rs, rt, o)) l
let bne t rs rt l = branch t (fun o -> Inst.Bne (rs, rt, o)) l
let blt t rs rt l = branch t (fun o -> Inst.Blt (rs, rt, o)) l
let bge t rs rt l = branch t (fun o -> Inst.Bge (rs, rt, o)) l
let bltu t rs rt l = branch t (fun o -> Inst.Bltu (rs, rt, o)) l
let bgeu t rs rt l = branch t (fun o -> Inst.Bgeu (rs, rt, o)) l
let j t l = add_item t (Jump_to (`J, l))
let jal t l = add_item t (Jump_to (`Jal, l))
let jr t rs = emit t (Inst.Jr rs)
let ret t = jr t Reg.ra
let jalr t rs = emit t (Inst.Jalr (Reg.ra, rs))

let li t rd v =
  let w = Word.of_int v in
  let signed = Word.to_signed w in
  if Encode.signed_imm_fits signed then emit t (Inst.Addi (rd, Reg.zero, signed))
  else begin
    emit t (Inst.Lui (rd, Word.hi16 w));
    if Word.lo16 w <> 0 then emit t (Inst.Ori (rd, rd, Word.lo16 w))
  end

let la t rd l =
  if Reg.is_reserved rd then error "la into reserved register";
  add_item t (La_hi (rd, l));
  add_item t (La_lo (rd, l))

let mv t rd rs = emit t (Inst.Add (rd, rs, Reg.zero))
let nop t = emit t Inst.Nop
let halt t = emit t Inst.Halt
let syscall t = emit t Inst.Syscall

let push t r =
  emit t (Inst.Addi (Reg.sp, Reg.sp, -4));
  emit t (Inst.Sw (r, Reg.sp, 0))

let pop t r =
  emit t (Inst.Lw (r, Reg.sp, 0));
  emit t (Inst.Addi (Reg.sp, Reg.sp, 4))

let data_pos t = t.data_base + Buffer.length t.data

let dlabel ?name t =
  let l = fresh_label ?name t in
  Hashtbl.replace t.labels l (data_pos t);
  l

let byte t v = Buffer.add_char t.data (Char.chr (v land 0xFF))

let word t v =
  let w = Word.of_int v in
  byte t w;
  byte t (w lsr 8);
  byte t (w lsr 16);
  byte t (w lsr 24)

let words t vs = List.iter (word t) vs

let asciiz t s =
  String.iter (Buffer.add_char t.data) s;
  Buffer.add_char t.data '\000'

let space t n =
  for _ = 1 to n do
    byte t 0
  done

let align t n =
  if n <= 0 then error "align: non-positive alignment";
  while Buffer.length t.data mod n <> 0 do
    byte t 0
  done

let resolve t l =
  match Hashtbl.find_opt t.labels l with
  | Some a -> a
  | None ->
      let name =
        List.find_map (fun (n, l') -> if l = l' then Some n else None) t.names
      in
      error "unresolved label %s"
        (match name with Some n -> n | None -> string_of_int l)

let encode_item t ~pc = function
  | Raw i -> Encode.inst i
  | Branch_to (i, l) ->
      let target = resolve t l in
      let delta = target - (pc + 4) in
      if delta land 3 <> 0 then error "branch to unaligned address %#x" target;
      let off = delta asr 2 in
      if not (Encode.signed_imm_fits off) then
        error "branch displacement %d words out of range at %#x" off pc;
      Encode.inst (Inst.with_branch_offset i off)
  | Jump_to (op, l) ->
      let target = resolve t l in
      if target land 3 <> 0 then error "jump to unaligned address %#x" target;
      if (pc + 4) land 0xF000_0000 <> target land 0xF000_0000 then
        error "jump from %#x to %#x crosses a 256MiB region" pc target;
      let idx = (target lsr 2) land 0x3FF_FFFF in
      Encode.inst (match op with `J -> Inst.J idx | `Jal -> Inst.Jal idx)
  | La_hi (rd, l) -> Encode.inst (Inst.Lui (rd, Word.hi16 (resolve t l)))
  | La_lo (rd, l) ->
      let a = resolve t l in
      Encode.inst (Inst.Ori (rd, rd, Word.lo16 a))

let assemble ?(extra_symbols = []) t ~entry =
  let items = Array.of_list (List.rev t.items) in
  let text = Bytes.create (4 * Array.length items) in
  Array.iteri
    (fun i it ->
      let pc = t.text_base + (4 * i) in
      let w = encode_item t ~pc it in
      Bytes.set text (4 * i) (Char.chr (w land 0xFF));
      Bytes.set text ((4 * i) + 1) (Char.chr ((w lsr 8) land 0xFF));
      Bytes.set text ((4 * i) + 2) (Char.chr ((w lsr 16) land 0xFF));
      Bytes.set text ((4 * i) + 3) (Char.chr ((w lsr 24) land 0xFF)))
    items;
  let segments =
    { Program.base = t.text_base; data = text }
    ::
    (if Buffer.length t.data = 0 then []
     else [ { Program.base = t.data_base; data = Buffer.to_bytes t.data } ])
  in
  let symbols =
    extra_symbols @ List.map (fun (n, l) -> (n, resolve t l)) t.names
  in
  { Program.entry = resolve t entry; segments; symbols }
