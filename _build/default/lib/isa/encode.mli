(** Binary encoding of VIA instructions.

    The word layout is MIPS-like:
    - R-type: [op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)], with [op = 0];
    - I-type: [op(6) rs(5) rt(5) imm(16)];
    - J-type: [op(6) target(26)], target in words.

    {!Decode.inst} is the exact inverse on every word {!inst} produces
    (and on every 32-bit word at all: non-instruction words decode to
    [Inst.Illegal], which re-encodes to the original word). *)

val inst : Inst.t -> Word.t
(** [inst i] is the 32-bit encoding of [i].

    @raise Invalid_argument if an operand is out of range: a register
    outside [0, 31], a shift amount outside [0, 31], a signed immediate
    outside [-32768, 32767], an unsigned immediate outside [0, 65535], or
    a jump target outside [0, 2{^26}). *)

val signed_imm_fits : int -> bool
(** Does the value fit a sign-extended 16-bit immediate? *)

val unsigned_imm_fits : int -> bool
(** Does the value fit a zero-extended 16-bit immediate? *)
