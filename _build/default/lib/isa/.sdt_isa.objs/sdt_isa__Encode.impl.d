lib/isa/encode.ml: Inst Opcodes Printf Reg Word
