lib/isa/reg.ml: Array Format Printf String
