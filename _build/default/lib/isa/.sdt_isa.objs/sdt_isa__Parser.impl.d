lib/isa/parser.ml: Format Lexer List Printf Reg String
