lib/isa/assembler.ml: Builder Fun Hashtbl Inst Lexer List Parser Printf Reg String
