lib/isa/decode.ml: Inst Opcodes Word
