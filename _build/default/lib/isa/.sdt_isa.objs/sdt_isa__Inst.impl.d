lib/isa/inst.ml: Format List Reg
