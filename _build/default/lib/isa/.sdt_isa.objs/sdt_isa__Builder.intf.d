lib/isa/builder.mli: Inst Program Reg
