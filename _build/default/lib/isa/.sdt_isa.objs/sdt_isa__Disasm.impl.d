lib/isa/disasm.ml: Buffer Decode Hashtbl Inst List Printf Program Reg
