lib/isa/lexer.mli: Format Reg
