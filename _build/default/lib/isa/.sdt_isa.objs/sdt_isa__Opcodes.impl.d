lib/isa/opcodes.ml:
