lib/isa/parser.mli: Reg
