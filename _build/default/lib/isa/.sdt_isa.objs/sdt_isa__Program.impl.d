lib/isa/program.ml: Bytes Char List
