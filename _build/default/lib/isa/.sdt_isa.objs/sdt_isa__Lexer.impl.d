lib/isa/lexer.ml: Buffer Char Format List Printf Reg String
