lib/isa/image.mli: Program
