lib/isa/decode.mli: Inst Word
