lib/isa/assembler.mli: Program
