lib/isa/program.mli: Word
