lib/isa/encode.mli: Inst Word
