lib/isa/builder.ml: Array Buffer Bytes Char Encode Hashtbl Inst List Printf Program Reg String Word
