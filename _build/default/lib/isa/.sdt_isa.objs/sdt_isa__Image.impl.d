lib/isa/image.ml: Buffer Bytes Char In_channel List Out_channel Printf Program String
