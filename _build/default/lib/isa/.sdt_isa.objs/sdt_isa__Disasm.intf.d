lib/isa/disasm.mli: Inst Program Word
