type operand =
  | Reg of Reg.t
  | Imm of int
  | Sym of string
  | Mem of int * Reg.t

type stmt =
  | Label of string
  | Instr of string * operand list
  | Dir_text
  | Dir_data
  | Dir_word of int list
  | Dir_byte of int list
  | Dir_asciiz of string
  | Dir_space of int
  | Dir_align of int
  | Dir_globl of string

exception Error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

let parse_operands line toks =
  (* operand {',' operand} *)
  let operand = function
    | Lexer.Register r :: rest -> ((Reg r : operand), rest)
    | Lexer.Int v :: Lexer.Lparen :: Lexer.Register r :: Lexer.Rparen :: rest
      ->
        (Mem (v, r), rest)
    | Lexer.Lparen :: Lexer.Register r :: Lexer.Rparen :: rest ->
        (Mem (0, r), rest)
    | Lexer.Int v :: rest -> (Imm v, rest)
    | Lexer.Ident s :: rest -> (Sym s, rest)
    | tok :: _ -> fail line "unexpected token %s" (Format.asprintf "%a" Lexer.pp_token tok)
    | [] -> fail line "missing operand"
  in
  let rec loop acc toks =
    let op, rest = operand toks in
    match rest with
    | [] -> List.rev (op :: acc)
    | Lexer.Comma :: rest -> loop (op :: acc) rest
    | tok :: _ ->
        fail line "expected ',' but found %s"
          (Format.asprintf "%a" Lexer.pp_token tok)
  in
  match toks with [] -> [] | _ -> loop [] toks

let int_list line ops =
  List.map
    (function
      | Imm v -> v
      | Reg _ | Sym _ | Mem _ -> fail line "expected integer literal")
    ops

let parse_directive line name toks =
  let ops = parse_operands line toks in
  match (name, ops) with
  | "text", [] -> Dir_text
  | "data", [] -> Dir_data
  | "word", _ :: _ -> Dir_word (int_list line ops)
  | "byte", _ :: _ -> Dir_byte (int_list line ops)
  | "asciiz", [ _ ] -> fail line ".asciiz expects a string literal"
  | "space", [ Imm n ] -> Dir_space n
  | "align", [ Imm n ] -> Dir_align n
  | "globl", [ Sym s ] -> Dir_globl s
  | _ -> fail line "malformed directive .%s" name

let parse_line ~line src =
  let toks = Lexer.tokenize ~line src in
  let rec labels acc = function
    | Lexer.Ident name :: Lexer.Colon :: rest -> labels (Label name :: acc) rest
    | rest -> (acc, rest)
  in
  let labs, rest = labels [] toks in
  let stmts =
    match rest with
    | [] -> []
    | [ Lexer.Directive "asciiz"; Lexer.Str s ] -> [ Dir_asciiz s ]
    | Lexer.Directive name :: toks -> [ parse_directive line name toks ]
    | Lexer.Ident mnemonic :: toks ->
        [ Instr (String.lowercase_ascii mnemonic, parse_operands line toks) ]
    | tok :: _ ->
        fail line "expected instruction or directive, found %s"
          (Format.asprintf "%a" Lexer.pp_token tok)
  in
  List.rev_append labs stmts
