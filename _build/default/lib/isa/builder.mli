(** Programmatic assembler.

    [Builder] is the DSL the synthetic workloads are written in: an
    append-only text section and data section with labels, branches to
    labels, and the usual pseudo-instructions. Instruction sizes are
    fixed at append time ([li] expands immediately), so placing a label
    simply records the current position; {!assemble} resolves all label
    references and fails loudly on anything unresolvable.

    Registers [$at], [$k0] and [$k1] are reserved for the dynamic
    translator (see {!Reg.reserved}); [emit] rejects instructions that
    touch them so that workload bugs are caught at build time rather
    than as silent mistranslations. *)

type t
type label

exception Error of string
(** Raised on malformed programs: unplaced or doubly-placed labels,
    branch displacement overflow, reserved-register use, out-of-range
    constants. *)

val create : ?text_base:int -> ?data_base:int -> unit -> t
(** Bases default to {!Program.default_text_base} and
    {!Program.default_data_base}. *)

(** {1 Labels} *)

val fresh_label : ?name:string -> t -> label
(** A new, unplaced label. [name] registers it in the symbol table. *)

val place : t -> label -> unit
(** Bind a label to the current text position. *)

val place_data : t -> label -> unit
(** Bind a label to the current data position. *)

val here : ?name:string -> t -> label
(** [here t] is [let l = fresh_label t in place t l; l]. *)

val text_pos : t -> int
(** Current text address. *)

(** {1 Instructions} *)

val emit : t -> Inst.t -> unit
(** Append one instruction verbatim.
    @raise Error if it uses a reserved register. *)

val beq : t -> Reg.t -> Reg.t -> label -> unit
val bne : t -> Reg.t -> Reg.t -> label -> unit
val blt : t -> Reg.t -> Reg.t -> label -> unit
val bge : t -> Reg.t -> Reg.t -> label -> unit
val bltu : t -> Reg.t -> Reg.t -> label -> unit
val bgeu : t -> Reg.t -> Reg.t -> label -> unit
val j : t -> label -> unit
val jal : t -> label -> unit
val jr : t -> Reg.t -> unit
val ret : t -> unit
(** [jr $ra] *)

val jalr : t -> Reg.t -> unit
(** [jalr $ra, rs] — the common indirect call. *)

(** {1 Pseudo-instructions} *)

val li : t -> Reg.t -> int -> unit
(** Load a 32-bit constant (1 or 2 instructions). *)

val la : t -> Reg.t -> label -> unit
(** Load a label address (always 2 instructions: [lui]+[ori]). *)

val mv : t -> Reg.t -> Reg.t -> unit
val nop : t -> unit
val halt : t -> unit
val syscall : t -> unit
val push : t -> Reg.t -> unit
(** [addi $sp,$sp,-4; sw r,0($sp)] *)

val pop : t -> Reg.t -> unit
(** [lw r,0($sp); addi $sp,$sp,4] *)

(** {1 Data section} *)

val dlabel : ?name:string -> t -> label
(** A label placed at the current data position. *)

val word : t -> int -> unit
val words : t -> int list -> unit
val byte : t -> int -> unit
val asciiz : t -> string -> unit
val space : t -> int -> unit
(** [space t n] reserves [n] zero bytes. *)

val align : t -> int -> unit
(** Pad the data section to an [n]-byte boundary. *)

(** {1 Assembly} *)

val assemble : ?extra_symbols:(string * int) list -> t -> entry:label -> Program.t
(** Resolve every reference and produce the image.
    @raise Error on unresolved labels or displacement overflow. *)
