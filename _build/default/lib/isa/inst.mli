(** The VIA instruction set.

    VIA is a 32-bit, fixed-width, load/store architecture in the MIPS
    mould (no branch delay slots). It is the guest *and* host ISA of this
    reproduction: application binaries are VIA machine code, and the
    software dynamic translator emits VIA machine code into its fragment
    cache.

    Operand conventions, by constructor argument order:
    - three-register ALU ops: [(rd, rs, rt)], compute [rd := rs op rt];
    - immediate ALU ops: [(rt, rs, imm)], compute [rt := rs op imm];
    - shifts by immediate: [(rd, rt, shamt)];
    - loads [(rt, rs, off)]: [rt := mem(rs + sext off)];
    - stores [(rt, rs, off)]: [mem(rs + sext off) := rt];
    - branches [(rs, rt, off)]: compare [rs] with [rt]; the 16-bit offset
      is a signed word displacement relative to the instruction after the
      branch;
    - [J]/[Jal] carry a 26-bit word index within the current 256 MiB
      region;
    - [Jr rs] jumps to the address in [rs]; [Jr ra] is the conventional
      return and is the form return predictors recognise;
    - [Jalr (rd, rs)] is the indirect call: [rd := pc + 4; pc := rs].

    [Trap k] is not part of the application-visible ISA: it is the
    translator's trampoline into the runtime and is only legal inside the
    fragment cache. *)

type t =
  | Nop
  (* R-type ALU *)
  | Add of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Rem of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Nor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  | Sllv of Reg.t * Reg.t * Reg.t  (** [(rd, rt, rs)]: [rd := rt << rs]. *)
  | Srlv of Reg.t * Reg.t * Reg.t
  | Srav of Reg.t * Reg.t * Reg.t
  (* shifts by immediate *)
  | Sll of Reg.t * Reg.t * int
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  (* I-type ALU *)
  | Addi of Reg.t * Reg.t * int   (** immediate sign-extended *)
  | Slti of Reg.t * Reg.t * int
  | Sltiu of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int   (** immediate zero-extended *)
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  (* memory *)
  | Lw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
  | Lbu of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  (* control *)
  | Beq of Reg.t * Reg.t * int
  | Bne of Reg.t * Reg.t * int
  | Blt of Reg.t * Reg.t * int
  | Bge of Reg.t * Reg.t * int
  | Bltu of Reg.t * Reg.t * int
  | Bgeu of Reg.t * Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  (* system *)
  | Syscall
  | Trap of int
  | Halt
  | Illegal of int
      (** A word that does not decode; executing it is a machine error.
          The payload is the raw word, preserved for encode/decode
          round-tripping. *)

val is_control : t -> bool
(** Does this instruction end a basic block? *)

val is_branch : t -> bool
(** Conditional branch? *)

val writes : t -> Reg.t list
(** Registers written (excluding [$zero] semantics; [Jal] writes [$ra]). *)

val reads : t -> Reg.t list
(** Registers read. *)

val uses_reserved : t -> bool
(** Does the instruction read or write a translator-reserved register
    ({!Reg.reserved})? Application code must not; the translator checks. *)

val branch_offset : t -> int option
(** The signed word displacement of a conditional branch. *)

val with_branch_offset : t -> int -> t
(** Replace the displacement of a conditional branch.
    @raise Invalid_argument on non-branches. *)

val pp : Format.formatter -> t -> unit
(** Assembly rendering, e.g. [add $t0, $t1, $t2]. *)

val to_string : t -> string
