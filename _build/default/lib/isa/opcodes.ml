(* Opcode and funct assignments for the VIA encoding; shared by
   {!Encode} and {!Decode}. The numbering follows MIPS where an
   equivalent instruction exists, so disassembly is familiar. *)

let op_rtype = 0
let op_j = 2
let op_jal = 3
let op_beq = 4
let op_bne = 5
let op_blt = 6
let op_bge = 7
let op_addi = 8
let op_slti = 10
let op_sltiu = 11
let op_andi = 12
let op_ori = 13
let op_xori = 14
let op_lui = 15
let op_bltu = 16
let op_bgeu = 17
let op_lb = 32
let op_lw = 35
let op_lbu = 36
let op_sb = 40
let op_sw = 43
let op_trap = 62
let op_halt = 63

let f_sll = 0
let f_srl = 2
let f_sra = 3
let f_sllv = 4
let f_srlv = 6
let f_srav = 7
let f_jr = 8
let f_jalr = 9
let f_syscall = 12
let f_mul = 24
let f_div = 26
let f_rem = 27
let f_add = 32
let f_sub = 34
let f_and = 36
let f_or = 37
let f_xor = 38
let f_nor = 39
let f_slt = 42
let f_sltu = 43
