type t =
  | Nop
  | Add of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Rem of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Nor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  | Sllv of Reg.t * Reg.t * Reg.t
  | Srlv of Reg.t * Reg.t * Reg.t
  | Srav of Reg.t * Reg.t * Reg.t
  | Sll of Reg.t * Reg.t * int
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  | Addi of Reg.t * Reg.t * int
  | Slti of Reg.t * Reg.t * int
  | Sltiu of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Lw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
  | Lbu of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  | Beq of Reg.t * Reg.t * int
  | Bne of Reg.t * Reg.t * int
  | Blt of Reg.t * Reg.t * int
  | Bge of Reg.t * Reg.t * int
  | Bltu of Reg.t * Reg.t * int
  | Bgeu of Reg.t * Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Syscall
  | Trap of int
  | Halt
  | Illegal of int

let is_control = function
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ | J _ | Jal _ | Jr _
  | Jalr _ | Halt ->
      true
  | Nop | Add _ | Sub _ | Mul _ | Div _ | Rem _ | And _ | Or _ | Xor _
  | Nor _ | Slt _ | Sltu _ | Sllv _ | Srlv _ | Srav _ | Sll _ | Srl _
  | Sra _ | Addi _ | Slti _ | Sltiu _ | Andi _ | Ori _ | Xori _ | Lui _
  | Lw _ | Lb _ | Lbu _ | Sw _ | Sb _ | Syscall | Trap _ | Illegal _ ->
      false

let is_branch = function
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ -> true
  | Nop | Add _ | Sub _ | Mul _ | Div _ | Rem _ | And _ | Or _ | Xor _
  | Nor _ | Slt _ | Sltu _ | Sllv _ | Srlv _ | Srav _ | Sll _ | Srl _
  | Sra _ | Addi _ | Slti _ | Sltiu _ | Andi _ | Ori _ | Xori _ | Lui _
  | Lw _ | Lb _ | Lbu _ | Sw _ | Sb _ | J _ | Jal _ | Jr _ | Jalr _
  | Syscall | Trap _ | Halt | Illegal _ ->
      false

let writes = function
  | Add (rd, _, _)
  | Sub (rd, _, _)
  | Mul (rd, _, _)
  | Div (rd, _, _)
  | Rem (rd, _, _)
  | And (rd, _, _)
  | Or (rd, _, _)
  | Xor (rd, _, _)
  | Nor (rd, _, _)
  | Slt (rd, _, _)
  | Sltu (rd, _, _)
  | Sllv (rd, _, _)
  | Srlv (rd, _, _)
  | Srav (rd, _, _)
  | Sll (rd, _, _)
  | Srl (rd, _, _)
  | Sra (rd, _, _) ->
      [ rd ]
  | Addi (rt, _, _)
  | Slti (rt, _, _)
  | Sltiu (rt, _, _)
  | Andi (rt, _, _)
  | Ori (rt, _, _)
  | Xori (rt, _, _)
  | Lui (rt, _)
  | Lw (rt, _, _)
  | Lb (rt, _, _)
  | Lbu (rt, _, _) ->
      [ rt ]
  | Jal _ -> [ Reg.ra ]
  | Jalr (rd, _) -> [ rd ]
  | Syscall -> [ Reg.v0; Reg.v1 ]
  | Nop | Sw _ | Sb _ | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _
  | J _ | Jr _ | Trap _ | Halt | Illegal _ ->
      []

let reads = function
  | Add (_, rs, rt)
  | Sub (_, rs, rt)
  | Mul (_, rs, rt)
  | Div (_, rs, rt)
  | Rem (_, rs, rt)
  | And (_, rs, rt)
  | Or (_, rs, rt)
  | Xor (_, rs, rt)
  | Nor (_, rs, rt)
  | Slt (_, rs, rt)
  | Sltu (_, rs, rt)
  | Beq (rs, rt, _)
  | Bne (rs, rt, _)
  | Blt (rs, rt, _)
  | Bge (rs, rt, _)
  | Bltu (rs, rt, _)
  | Bgeu (rs, rt, _) ->
      [ rs; rt ]
  | Sllv (_, rt, rs) | Srlv (_, rt, rs) | Srav (_, rt, rs) -> [ rt; rs ]
  | Sll (_, rt, _) | Srl (_, rt, _) | Sra (_, rt, _) -> [ rt ]
  | Addi (_, rs, _)
  | Slti (_, rs, _)
  | Sltiu (_, rs, _)
  | Andi (_, rs, _)
  | Ori (_, rs, _)
  | Xori (_, rs, _)
  | Lw (_, rs, _)
  | Lb (_, rs, _)
  | Lbu (_, rs, _) ->
      [ rs ]
  | Sw (rt, rs, _) | Sb (rt, rs, _) -> [ rt; rs ]
  | Jr rs -> [ rs ]
  | Jalr (_, rs) -> [ rs ]
  | Syscall -> [ Reg.v0; Reg.a0; Reg.a1 ]
  | Nop | Lui _ | J _ | Jal _ | Trap _ | Halt | Illegal _ -> []

let uses_reserved i =
  List.exists Reg.is_reserved (writes i)
  || List.exists Reg.is_reserved (reads i)

let branch_offset = function
  | Beq (_, _, off) | Bne (_, _, off) | Blt (_, _, off) | Bge (_, _, off)
  | Bltu (_, _, off) | Bgeu (_, _, off) ->
      Some off
  | Nop | Add _ | Sub _ | Mul _ | Div _ | Rem _ | And _ | Or _ | Xor _
  | Nor _ | Slt _ | Sltu _ | Sllv _ | Srlv _ | Srav _ | Sll _ | Srl _
  | Sra _ | Addi _ | Slti _ | Sltiu _ | Andi _ | Ori _ | Xori _ | Lui _
  | Lw _ | Lb _ | Lbu _ | Sw _ | Sb _ | J _ | Jal _ | Jr _ | Jalr _
  | Syscall | Trap _ | Halt | Illegal _ ->
      None

let with_branch_offset i off =
  match i with
  | Beq (rs, rt, _) -> Beq (rs, rt, off)
  | Bne (rs, rt, _) -> Bne (rs, rt, off)
  | Blt (rs, rt, _) -> Blt (rs, rt, off)
  | Bge (rs, rt, _) -> Bge (rs, rt, off)
  | Bltu (rs, rt, _) -> Bltu (rs, rt, off)
  | Bgeu (rs, rt, _) -> Bgeu (rs, rt, off)
  | Nop | Add _ | Sub _ | Mul _ | Div _ | Rem _ | And _ | Or _ | Xor _
  | Nor _ | Slt _ | Sltu _ | Sllv _ | Srlv _ | Srav _ | Sll _ | Srl _
  | Sra _ | Addi _ | Slti _ | Sltiu _ | Andi _ | Ori _ | Xori _ | Lui _
  | Lw _ | Lb _ | Lbu _ | Sw _ | Sb _ | J _ | Jal _ | Jr _ | Jalr _
  | Syscall | Trap _ | Halt | Illegal _ ->
      invalid_arg "Inst.with_branch_offset: not a conditional branch"

let pp ppf i =
  let r = Reg.name in
  let f fmt = Format.fprintf ppf fmt in
  match i with
  | Nop -> f "nop"
  | Add (rd, rs, rt) -> f "add %s, %s, %s" (r rd) (r rs) (r rt)
  | Sub (rd, rs, rt) -> f "sub %s, %s, %s" (r rd) (r rs) (r rt)
  | Mul (rd, rs, rt) -> f "mul %s, %s, %s" (r rd) (r rs) (r rt)
  | Div (rd, rs, rt) -> f "div %s, %s, %s" (r rd) (r rs) (r rt)
  | Rem (rd, rs, rt) -> f "rem %s, %s, %s" (r rd) (r rs) (r rt)
  | And (rd, rs, rt) -> f "and %s, %s, %s" (r rd) (r rs) (r rt)
  | Or (rd, rs, rt) -> f "or %s, %s, %s" (r rd) (r rs) (r rt)
  | Xor (rd, rs, rt) -> f "xor %s, %s, %s" (r rd) (r rs) (r rt)
  | Nor (rd, rs, rt) -> f "nor %s, %s, %s" (r rd) (r rs) (r rt)
  | Slt (rd, rs, rt) -> f "slt %s, %s, %s" (r rd) (r rs) (r rt)
  | Sltu (rd, rs, rt) -> f "sltu %s, %s, %s" (r rd) (r rs) (r rt)
  | Sllv (rd, rt, rs) -> f "sllv %s, %s, %s" (r rd) (r rt) (r rs)
  | Srlv (rd, rt, rs) -> f "srlv %s, %s, %s" (r rd) (r rt) (r rs)
  | Srav (rd, rt, rs) -> f "srav %s, %s, %s" (r rd) (r rt) (r rs)
  | Sll (rd, rt, sh) -> f "sll %s, %s, %d" (r rd) (r rt) sh
  | Srl (rd, rt, sh) -> f "srl %s, %s, %d" (r rd) (r rt) sh
  | Sra (rd, rt, sh) -> f "sra %s, %s, %d" (r rd) (r rt) sh
  | Addi (rt, rs, imm) -> f "addi %s, %s, %d" (r rt) (r rs) imm
  | Slti (rt, rs, imm) -> f "slti %s, %s, %d" (r rt) (r rs) imm
  | Sltiu (rt, rs, imm) -> f "sltiu %s, %s, %d" (r rt) (r rs) imm
  | Andi (rt, rs, imm) -> f "andi %s, %s, %d" (r rt) (r rs) imm
  | Ori (rt, rs, imm) -> f "ori %s, %s, %d" (r rt) (r rs) imm
  | Xori (rt, rs, imm) -> f "xori %s, %s, %d" (r rt) (r rs) imm
  | Lui (rt, imm) -> f "lui %s, %d" (r rt) imm
  | Lw (rt, rs, off) -> f "lw %s, %d(%s)" (r rt) off (r rs)
  | Lb (rt, rs, off) -> f "lb %s, %d(%s)" (r rt) off (r rs)
  | Lbu (rt, rs, off) -> f "lbu %s, %d(%s)" (r rt) off (r rs)
  | Sw (rt, rs, off) -> f "sw %s, %d(%s)" (r rt) off (r rs)
  | Sb (rt, rs, off) -> f "sb %s, %d(%s)" (r rt) off (r rs)
  | Beq (rs, rt, off) -> f "beq %s, %s, %d" (r rs) (r rt) off
  | Bne (rs, rt, off) -> f "bne %s, %s, %d" (r rs) (r rt) off
  | Blt (rs, rt, off) -> f "blt %s, %s, %d" (r rs) (r rt) off
  | Bge (rs, rt, off) -> f "bge %s, %s, %d" (r rs) (r rt) off
  | Bltu (rs, rt, off) -> f "bltu %s, %s, %d" (r rs) (r rt) off
  | Bgeu (rs, rt, off) -> f "bgeu %s, %s, %d" (r rs) (r rt) off
  | J t -> f "j 0x%x" (t * 4)
  | Jal t -> f "jal 0x%x" (t * 4)
  | Jr rs -> f "jr %s" (r rs)
  | Jalr (rd, rs) -> f "jalr %s, %s" (r rd) (r rs)
  | Syscall -> f "syscall"
  | Trap k -> f "trap %d" k
  | Halt -> f "halt"
  | Illegal w -> f ".illegal 0x%08x" w

let to_string i = Format.asprintf "%a" pp i
