exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let to_string (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "via-image v1\n";
  Buffer.add_string buf (Printf.sprintf "entry 0x%08x\n" p.Program.entry);
  List.iter
    (fun (name, addr) ->
      Buffer.add_string buf (Printf.sprintf "symbol %s 0x%08x\n" name addr))
    p.Program.symbols;
  List.iter
    (fun { Program.base; data } ->
      Buffer.add_string buf (Printf.sprintf "segment 0x%08x\n" base);
      Buffer.add_string buf (Printf.sprintf "bytes %d\n" (Bytes.length data));
      let n = Bytes.length data in
      let i = ref 0 in
      while !i < n do
        let w = ref 0 in
        for j = 3 downto 0 do
          w := (!w lsl 8) lor (if !i + j < n then Char.code (Bytes.get data (!i + j)) else 0)
        done;
        Buffer.add_string buf (Printf.sprintf "%08x\n" !w);
        i := !i + 4
      done)
    p.Program.segments;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | magic :: rest when magic = "via-image v1" ->
      let entry = ref None in
      let symbols = ref [] in
      let segments = ref [] in
      (* current segment being accumulated *)
      let cur_base = ref None in
      let cur_bytes = ref 0 in
      let cur_words = ref [] in
      let flush_segment () =
        match !cur_base with
        | None -> ()
        | Some base ->
            let words = List.rev !cur_words in
            let n = !cur_bytes in
            let data = Bytes.create n in
            List.iteri
              (fun wi w ->
                for j = 0 to 3 do
                  let off = (wi * 4) + j in
                  if off < n then
                    Bytes.set data off (Char.chr ((w lsr (8 * j)) land 0xFF))
                done)
              words;
            segments := { Program.base; data } :: !segments;
            cur_base := None;
            cur_words := []
      in
      let parse_hex str =
        match int_of_string_opt ("0x" ^ str) with
        | Some v -> v
        | None -> error "bad hex %S" str
      in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "entry"; a ] -> entry := Some (int_of_string a)
          | [ "symbol"; name; a ] ->
              symbols := (name, int_of_string a) :: !symbols
          | [ "segment"; a ] ->
              flush_segment ();
              cur_base := Some (int_of_string a);
              cur_bytes := 0
          | [ "bytes"; n ] -> cur_bytes := int_of_string n
          | [ w ] when !cur_base <> None -> cur_words := parse_hex w :: !cur_words
          | _ -> error "unexpected line %S" line)
        rest;
      flush_segment ();
      let entry =
        match !entry with Some e -> e | None -> error "missing entry"
      in
      {
        Program.entry;
        segments = List.rev !segments;
        symbols = List.rev !symbols;
      }
  | _ -> error "not a via-image file"

let save path p =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string p))

let load path =
  In_channel.with_open_bin path (fun ic ->
      try of_string (In_channel.input_all ic)
      with Failure _ -> error "malformed image %s" path)
