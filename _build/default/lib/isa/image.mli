(** A plain-text serialisation of program images, so the assembler,
    runner and disassembler can be separate executables.

    Format (line-oriented, '#' comments):
    {v
      via-image v1
      entry 0x00001000
      symbol main 0x00001000
      segment 0x00001000
      24080000
      ...
    v}
    Segment payloads are one 32-bit hex word per line, little-endian in
    memory; a trailing [bytes N] word count allows non-multiple-of-4
    segments. *)

exception Error of string

val to_string : Program.t -> string
val of_string : string -> Program.t
(** @raise Error on malformed input. *)

val save : string -> Program.t -> unit
val load : string -> Program.t
