let signed_imm_fits v = v >= -32768 && v <= 32767
let unsigned_imm_fits v = v >= 0 && v <= 65535

let check_reg r =
  if not (Reg.is_valid r) then invalid_arg "Encode: bad register"

let check_shamt s =
  if s < 0 || s > 31 then invalid_arg "Encode: bad shift amount"

let check_simm v =
  if not (signed_imm_fits v) then
    invalid_arg (Printf.sprintf "Encode: signed immediate %d out of range" v)

let check_uimm v =
  if not (unsigned_imm_fits v) then
    invalid_arg (Printf.sprintf "Encode: unsigned immediate %d out of range" v)

let check_target t =
  if t < 0 || t >= 1 lsl 26 then invalid_arg "Encode: jump target out of range"

let r_type ~rs ~rt ~rd ~shamt ~funct =
  check_reg rs;
  check_reg rt;
  check_reg rd;
  check_shamt shamt;
  (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6) lor funct

let i_type ~op ~rs ~rt ~imm =
  check_reg rs;
  check_reg rt;
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xFFFF)

let i_signed ~op ~rs ~rt ~imm =
  check_simm imm;
  i_type ~op ~rs ~rt ~imm

let i_unsigned ~op ~rs ~rt ~imm =
  check_uimm imm;
  i_type ~op ~rs ~rt ~imm

let j_type ~op ~target =
  check_target target;
  (op lsl 26) lor target

let inst (i : Inst.t) : Word.t =
  match i with
  | Nop -> 0
  | Sll (rd, rt, sh) -> r_type ~rs:0 ~rt ~rd ~shamt:sh ~funct:Opcodes.f_sll
  | Srl (rd, rt, sh) -> r_type ~rs:0 ~rt ~rd ~shamt:sh ~funct:Opcodes.f_srl
  | Sra (rd, rt, sh) -> r_type ~rs:0 ~rt ~rd ~shamt:sh ~funct:Opcodes.f_sra
  | Sllv (rd, rt, rs) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_sllv
  | Srlv (rd, rt, rs) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_srlv
  | Srav (rd, rt, rs) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_srav
  | Jr rs -> r_type ~rs ~rt:0 ~rd:0 ~shamt:0 ~funct:Opcodes.f_jr
  | Jalr (rd, rs) -> r_type ~rs ~rt:0 ~rd ~shamt:0 ~funct:Opcodes.f_jalr
  | Syscall -> r_type ~rs:0 ~rt:0 ~rd:0 ~shamt:0 ~funct:Opcodes.f_syscall
  | Mul (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_mul
  | Div (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_div
  | Rem (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_rem
  | Add (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_add
  | Sub (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_sub
  | And (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_and
  | Or (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_or
  | Xor (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_xor
  | Nor (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_nor
  | Slt (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_slt
  | Sltu (rd, rs, rt) -> r_type ~rs ~rt ~rd ~shamt:0 ~funct:Opcodes.f_sltu
  | J t -> j_type ~op:Opcodes.op_j ~target:t
  | Jal t -> j_type ~op:Opcodes.op_jal ~target:t
  | Beq (rs, rt, off) -> i_signed ~op:Opcodes.op_beq ~rs ~rt ~imm:off
  | Bne (rs, rt, off) -> i_signed ~op:Opcodes.op_bne ~rs ~rt ~imm:off
  | Blt (rs, rt, off) -> i_signed ~op:Opcodes.op_blt ~rs ~rt ~imm:off
  | Bge (rs, rt, off) -> i_signed ~op:Opcodes.op_bge ~rs ~rt ~imm:off
  | Bltu (rs, rt, off) -> i_signed ~op:Opcodes.op_bltu ~rs ~rt ~imm:off
  | Bgeu (rs, rt, off) -> i_signed ~op:Opcodes.op_bgeu ~rs ~rt ~imm:off
  | Addi (rt, rs, imm) -> i_signed ~op:Opcodes.op_addi ~rs ~rt ~imm
  | Slti (rt, rs, imm) -> i_signed ~op:Opcodes.op_slti ~rs ~rt ~imm
  | Sltiu (rt, rs, imm) -> i_signed ~op:Opcodes.op_sltiu ~rs ~rt ~imm
  | Andi (rt, rs, imm) -> i_unsigned ~op:Opcodes.op_andi ~rs ~rt ~imm
  | Ori (rt, rs, imm) -> i_unsigned ~op:Opcodes.op_ori ~rs ~rt ~imm
  | Xori (rt, rs, imm) -> i_unsigned ~op:Opcodes.op_xori ~rs ~rt ~imm
  | Lui (rt, imm) -> i_unsigned ~op:Opcodes.op_lui ~rs:0 ~rt ~imm
  | Lw (rt, rs, off) -> i_signed ~op:Opcodes.op_lw ~rs ~rt ~imm:off
  | Lb (rt, rs, off) -> i_signed ~op:Opcodes.op_lb ~rs ~rt ~imm:off
  | Lbu (rt, rs, off) -> i_signed ~op:Opcodes.op_lbu ~rs ~rt ~imm:off
  | Sw (rt, rs, off) -> i_signed ~op:Opcodes.op_sw ~rs ~rt ~imm:off
  | Sb (rt, rs, off) -> i_signed ~op:Opcodes.op_sb ~rs ~rt ~imm:off
  | Trap k ->
      check_uimm k;
      j_type ~op:Opcodes.op_trap ~target:k
  | Halt -> j_type ~op:Opcodes.op_halt ~target:0
  | Illegal w -> Word.of_int w
