(** Disassembler.

    Renders machine words back to assembly, resolving PC-relative branch
    displacements and jump indices to absolute addresses so listings are
    readable. *)

val inst : pc:int -> Inst.t -> string
(** Render one instruction located at [pc]. Branch and jump targets are
    shown as absolute hex addresses. *)

val word : pc:int -> Word.t -> string
(** [word ~pc w] is [inst ~pc (Decode.inst w)]. *)

val listing : ?symbols:(string * int) list -> Program.t -> string
(** A full listing of a program image: one line per word,
    [address: rawword  mnemonic], with symbol names interleaved. *)
