type t = int

let mask = 0xFFFF_FFFF
let of_int n = n land mask
let of_signed = of_int

let to_signed w =
  if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = a * b land mask

let sdiv a b =
  if b = 0 then 0
  else of_int (to_signed a / to_signed b)

let srem a b =
  if b = 0 then a
  else of_int (to_signed a mod to_signed b)

let logand = ( land )
let logor = ( lor )
let logxor = ( lxor )
let lognot w = lnot w land mask

let shl w n = (w lsl (n land 31)) land mask
let shr_l w n = w lsr (n land 31)
let shr_a w n = (to_signed w asr (n land 31)) land mask

let lt_s a b = to_signed a < to_signed b
let lt_u a b = a < b

let hi16 w = (w lsr 16) land 0xFFFF
let lo16 w = w land 0xFFFF

let sext16 imm =
  let imm = imm land 0xFFFF in
  if imm land 0x8000 <> 0 then imm lor 0xFFFF_0000 else imm

let sext8 b =
  let b = b land 0xFF in
  if b land 0x80 <> 0 then b lor 0xFFFF_FF00 else b

let pp ppf w = Format.fprintf ppf "0x%08x" w
let to_hex w = Printf.sprintf "0x%08x" w
