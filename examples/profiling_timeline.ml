(* Watching a mechanism warm up: the observability layer as a time
   machine. A single end-of-run number ("IBTC miss rate: 0.4%") hides
   the transient that dominates short-running code — the table starts
   empty, every early indirect branch misses, and only once the target
   working set is cached does the steady state the paper's figures
   describe take over.

   This example attaches a metrics sampler to a perlbmk run under the
   shared IBTC and renders the warm-up curve: occupancy and hit rate
   per sample interval, plus the event trace's view of when the misses
   actually happened.

   Run with: dune exec examples/profiling_timeline.exe *)

module Arch = Sdt_march.Arch
module Timing = Sdt_march.Timing
module Config = Sdt_core.Config
module Runtime = Sdt_core.Runtime
module Suite = Sdt_workloads.Suite
module Trace = Sdt_observe.Trace
module Metrics = Sdt_observe.Metrics
module Event = Sdt_observe.Event
module Observer = Sdt_observe.Observer

let bar width frac =
  let n = int_of_float (frac *. float_of_int width +. 0.5) in
  String.make (max 0 (min width n)) '#'

let () =
  let e = Option.get (Suite.find "perlbmk") in
  let program = Suite.program e `Test in
  let cfg = Config.default (* shared IBTC, fast-reload misses *) in
  let arch = Arch.arch_a in
  let timing = Timing.create arch in
  let tracer = Trace.create () in
  let metrics = Metrics.create () in
  let observer =
    Observer.create
      ~clock:(fun () -> Timing.cycles timing)
      ~trace:tracer ~metrics ~sample_interval:25_000 ()
  in
  let rt = Runtime.create ~cfg ~arch ~timing ~observer program in
  Runtime.run rt;

  Printf.printf "perlbmk under %s: %d cycles\n\n" (Config.describe cfg)
    (Timing.cycles timing);

  (* the warm-up curve, straight from the sampled series *)
  let columns = Metrics.columns metrics in
  let col name =
    let rec index i = function
      | [] -> invalid_arg name
      | c :: _ when c = name -> i
      | _ :: rest -> index (i + 1) rest
    in
    index 0 columns
  in
  let hit = col "ibtc_hit_rate" and occ = col "ibtc_occupancy" in
  let misses = col "stats.ibtc_misses_fast" in
  print_endline
    "   cycles    occupancy  misses  cumulative hit rate (0..100%)";
  List.iter
    (fun (cycle, values) ->
      let v i = List.nth values i in
      Printf.printf "  %8d   %8.4f%%  %6.0f  |%-40s| %5.1f%%\n" cycle
        (100.0 *. v occ) (v misses) (bar 40 (v hit)) (100.0 *. v hit))
    (Metrics.rows metrics);

  (* the same transient, event by event: when did misses cluster? *)
  let miss_cycles =
    List.filter_map
      (fun { Event.cycle; kind } ->
        match kind with Event.Ibtc_miss _ -> Some cycle | _ -> None)
      (Trace.events tracer)
  in
  let total = List.length miss_cycles in
  let final_cycle = max 1 (Timing.cycles timing) in
  let in_first_quarter =
    List.length (List.filter (fun c -> 4 * c < final_cycle) miss_cycles)
  in
  Printf.printf
    "\n%d IBTC misses traced; %d (%.0f%%) in the first quarter of the run —\n\
     the warm-up transient a steady-state miss rate averages away.\n"
    total in_first_quarter
    (100.0 *. float_of_int in_first_quarter /. float_of_int (max 1 total))
